module Time = Sim.Time
module Loop = Sim.Loop

type report = {
  engine_name : string;
  state_bytes : int;
  brownout : Time.t;
  blackout : Time.t;
  started_at : Time.t;
  finished_at : Time.t;
}

let serialize_time ~(costs : Sim.Costs.t) bytes =
  int_of_float
    (Float.round (float_of_int bytes /. costs.Sim.Costs.serialize_bytes_per_ns))

let blackout_of ~costs ~state_bytes =
  (* Detach filters + serialize + attach filters + deserialize. *)
  (2 * costs.Sim.Costs.nic_filter_update) + (2 * serialize_time ~costs state_bytes)

(* The brownout transfers control-plane connections and pre-builds the
   new engine's structures in the background; its duration scales with
   the same state but at a fraction of the cost because it does not
   quiesce anything. *)
let brownout_of ~costs ~state_bytes =
  Time.max (Time.ms 1) (serialize_time ~costs (state_bytes / 4))

let upgrade ~loop ~costs ~old_group ~new_group
    ?(extra_state_bytes = fun _ -> 0) ?(gap = Time.ms 1) ~on_done () =
  let queue = Queue.create () in
  List.iter (fun e -> Queue.add e queue) (Engine.engines old_group);
  let reports = ref [] in
  let rec next () =
    match Queue.take_opt queue with
    | None -> on_done (List.rev !reports)
    | Some e ->
        let state_bytes = Engine.state_bytes e + extra_state_bytes e in
        let brownout = brownout_of ~costs ~state_bytes in
        let started_at = Loop.now loop in
        (* Brownout: background transfer; the engine keeps running. *)
        ignore
          (Loop.after loop brownout (fun () ->
               (* Blackout: cease processing, detach, serialize; then
                  attach, deserialize, resume in the new instance. *)
               let black_start = Loop.now loop in
               Engine.remove old_group e;
               let blackout = blackout_of ~costs ~state_bytes in
               ignore
                 (Loop.after loop blackout (fun () ->
                      Engine.add new_group e;
                      Engine.notify e;
                      let finished_at = Loop.now loop in
                      reports :=
                        {
                          engine_name = Engine.name e;
                          state_bytes;
                          brownout;
                          blackout = Time.sub finished_at black_start;
                          started_at;
                          finished_at;
                        }
                        :: !reports;
                      ignore (Loop.after loop gap next)))))
  in
  next ()
