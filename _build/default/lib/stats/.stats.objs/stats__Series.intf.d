lib/stats/series.mli: Format Sim
