lib/stats/summary.ml: Format
