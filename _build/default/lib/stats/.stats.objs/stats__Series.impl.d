lib/stats/series.ml: Array Format List Sim
