(** Streaming mean / variance accumulator (Welford's algorithm). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Sample variance; 0 for fewer than two observations. *)

val std : t -> float
val min_value : t -> float
val max_value : t -> float
val total : t -> float
val clear : t -> unit
val pp : Format.formatter -> t -> unit
