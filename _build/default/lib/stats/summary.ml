type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean_acc = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean_acc
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let std t = sqrt (variance t)
let min_value t = if t.n = 0 then 0.0 else t.min_v
let max_value t = if t.n = 0 then 0.0 else t.max_v
let total t = t.sum

let clear t =
  t.n <- 0;
  t.mean_acc <- 0.0;
  t.m2 <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity;
  t.sum <- 0.0

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f std=%.3f min=%.3f max=%.3f" t.n (mean t)
    (std t) (min_value t) (max_value t)
