examples/host_dataplane.ml: Engine Fabric Memory Pony Printf Sim Snap
