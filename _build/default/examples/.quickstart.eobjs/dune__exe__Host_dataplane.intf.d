examples/host_dataplane.mli:
