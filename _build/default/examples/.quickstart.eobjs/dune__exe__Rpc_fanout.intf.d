examples/rpc_fanout.mli:
