examples/rpc_fanout.ml: Cpu Engine Fabric Format List Pony Printf Sim Snap Stats
