examples/live_upgrade.ml: Cpu Engine Fabric List Pony Printf Sim Snap Upgrade
