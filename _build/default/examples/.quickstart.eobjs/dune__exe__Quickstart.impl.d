examples/quickstart.ml: Cpu Engine Fabric Memory Option Pony Printf Sim Snap
