examples/kv_store.ml: Cpu Engine Fabric Int64 List Memory Option Pony Printf Sim Snap
