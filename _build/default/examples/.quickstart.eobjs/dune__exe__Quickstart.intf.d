examples/quickstart.mli:
