(* Web-search-style fan-out: a root server broadcasts a query to leaf
   servers over Pony Express two-sided messaging and aggregates their
   answers; tail latency of the slowest leaf defines query latency —
   the communication pattern that motivates the paper's latency focus.

   Run with: dune exec examples/rpc_fanout.exe *)

module T = Sim.Time
module PE = Pony.Express

let leaves = 6
let queries = 20

let () =
  let loop = Sim.Loop.create ~seed:99 () in
  let fabric =
    Fabric.create ~loop ~config:Fabric.default_config ~hosts:(leaves + 1)
  in
  let directory = PE.Directory.create () in
  let host addr =
    Snap.Host.create ~loop ~fabric ~directory ~addr
      ~mode:(Engine.Dedicating { cores = 1 })
      ()
  in
  let root = host 0 in
  let leaf_hosts = List.init leaves (fun i -> host (i + 1)) in

  (* Leaves echo a 16 kB result chunk per query, after a little
     simulated "search" compute. *)
  List.iteri
    (fun i h ->
      ignore
        (Snap.Host.spawn_app h
           ~name:(Printf.sprintf "leaf%d" i)
           (fun ctx ->
             let c =
               PE.create_client ctx h.Snap.Host.pony
                 ~name:(Printf.sprintf "leaf%d" i)
                 ()
             in
             while true do
               let m = PE.await_message ctx c in
               Cpu.Thread.compute ctx (T.us 20);
               ignore
                 (PE.send_message ctx m.PE.msg_conn ~stream:(m.PE.stream + 1)
                    ~bytes:16_384 ())
             done)))
    leaf_hosts;

  let lat = Stats.Histogram.create () in
  ignore
    (Snap.Host.spawn_app root ~name:"root" ~spin:true (fun ctx ->
         let c = PE.create_client ctx root.Snap.Host.pony ~name:"root" () in
         Cpu.Thread.sleep ctx (T.us 500);
         let conns =
           List.init leaves (fun i ->
               PE.connect ctx c ~dst_host:(i + 1) ~dst_client:0)
         in
         for q = 0 to queries - 1 do
           let t0 = Cpu.Thread.now ctx in
           List.iter
             (fun conn ->
               ignore (PE.send_message ctx conn ~stream:(4 * q) ~bytes:256 ()))
             conns;
           (* Gather all leaf responses. *)
           let got = ref 0 in
           while !got < leaves do
             match PE.poll_message ctx c with
             | Some _ -> incr got
             | None -> Cpu.Thread.wait ctx
           done;
           Stats.Histogram.record lat (Cpu.Thread.now ctx - t0)
         done;
         Format.printf "fan-out over %d leaves, %d queries: %a@." leaves
           queries Stats.Histogram.pp_summary lat));
  Sim.Loop.run ~until:(T.ms 100) loop
