(* A remote key-value store served entirely by one-sided operations —
   the data-analytics pattern behind Figure 8.

   The server shares two regions: an indirection table (slot i holds the
   offset of value i) and a data region holding the values.  Clients
   look keys up with the custom batched indirect read: the server-side
   engine resolves the table entry and fetches the value in a single
   network operation, with no server application thread on the path
   (§3.2).  A scan-and-read models tag-based lookup.

   Run with: dune exec examples/kv_store.exe *)

module T = Sim.Time
module PE = Pony.Express

let n_keys = 512
let value_bytes = 128

let () =
  let loop = Sim.Loop.create ~seed:7 () in
  let fabric = Fabric.create ~loop ~config:Fabric.default_config ~hosts:3 in
  let directory = PE.Directory.create () in
  let host addr =
    Snap.Host.create ~loop ~fabric ~directory ~addr
      ~mode:(Engine.Dedicating { cores = 1 })
      ()
  in
  let server = host 0 and client_a = host 1 and client_b = host 2 in

  (* Build the store: table.(k) -> offset of value k; value k starts
     with the 8-byte payload (k * 1000 + 7). *)
  let table = Memory.Region.create ~id:1 ~size:(8 * n_keys) ~owner:"kv" () in
  let data =
    Memory.Region.create ~id:2 ~size:(n_keys * value_bytes) ~owner:"kv" ()
  in
  for k = 0 to n_keys - 1 do
    let off = k * value_bytes in
    Memory.Region.write_int64 table (8 * k) (Int64.of_int off);
    Memory.Region.write_int64 data off (Int64.of_int ((k * 1000) + 7))
  done;
  (* A small tag index for scan-and-read: (tag, offset) pairs in the
     first half, the tagged values in the second half of the same
     shared region. *)
  let tags = Memory.Region.create ~id:3 ~size:4096 ~owner:"kv" () in
  Memory.Region.write_int64 tags (16 * 5) 424242L;
  Memory.Region.write_int64 tags ((16 * 5) + 8) 2048L;
  Memory.Region.write_int64 tags 2048 (Int64.of_int ((17 * 1000) + 7));

  ignore
    (Snap.Host.spawn_app server ~name:"kv-server" (fun ctx ->
         let c = PE.create_client ctx server.Snap.Host.pony ~name:"kv" () in
         PE.register_region ctx c table;
         PE.register_region ctx c data;
         PE.register_region ctx c tags;
         (* One-sided service: the application now just sleeps. *)
         Cpu.Thread.sleep ctx (T.ms 50)));

  let reader name host keys =
    ignore
      (Snap.Host.spawn_app host ~name (fun ctx ->
           let c = PE.create_client ctx host.Snap.Host.pony ~name () in
           Cpu.Thread.sleep ctx (T.us 300);
           let conn = PE.connect ctx c ~dst_host:0 ~dst_client:0 in
           (* Batched lookup of 8 keys in one operation. *)
           let t0 = Cpu.Thread.now ctx in
           ignore
             (PE.indirect_read ctx conn ~table_region:1 ~data_region:2
                ~indices:keys ~len:value_bytes);
           let comp = PE.await_completion ctx c in
           Printf.printf
             "%s: batch of %d keys -> %d bytes in %.1f us; first value = %Ld \
              (expected %d)\n"
             name (List.length keys) comp.PE.bytes
             (T.to_float_us (Cpu.Thread.now ctx - t0))
             (Option.value ~default:(-1L) comp.PE.value)
             ((List.hd keys * 1000) + 7);
           (* Tag lookup via scan-and-read. *)
           ignore
             (PE.scan_read ctx conn ~region:3 ~scan_limit:1024 ~needle:424242L
                ~len:8);
           let comp = PE.await_completion ctx c in
           (match comp.PE.status with
           | Pony.Wire.Ok ->
               Printf.printf "%s: scan-and-read tag 424242 -> key 17? value=%Ld\n"
                 name
                 (Option.value ~default:(-1L) comp.PE.value)
           | _ -> Printf.printf "%s: tag not found\n" name);
           (* A miss: out-of-range key. *)
           ignore
             (PE.indirect_read ctx conn ~table_region:1 ~data_region:2
                ~indices:[ n_keys + 100 ] ~len:value_bytes);
           let comp = PE.await_completion ctx c in
           Printf.printf "%s: out-of-range key -> %s\n" name
             (match comp.PE.status with
             | Pony.Wire.Bad_range -> "Bad_range (as expected)"
             | Pony.Wire.Ok -> "Ok?!"
             | _ -> "other error")))
  in
  reader "client-a" client_a [ 3; 10; 99; 42; 7; 8; 256; 400 ];
  reader "client-b" client_b [ 500; 1; 2; 3; 4; 5; 6; 7 ];
  Sim.Loop.run ~until:(T.ms 60) loop;
  Printf.printf "server engine executed %d one-sided operations\n"
    (PE.one_sided_served server.Snap.Host.pony)
