(* Transparent upgrade under live traffic (§4): a client ping-pongs
   messages while the server host migrates its engines to a "new
   release".  Connections survive; the transport absorbs the blackout as
   if it were congestion loss.

   Run with: dune exec examples/live_upgrade.exe *)

module T = Sim.Time
module PE = Pony.Express

let () =
  let loop = Sim.Loop.create ~seed:3 () in
  let fabric = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let directory = PE.Directory.create () in
  let host addr =
    Snap.Host.create ~loop ~fabric ~directory ~addr
      ~mode:(Engine.Dedicating { cores = 1 })
      ()
  in
  let a = host 0 and b = host 1 in

  ignore
    (Snap.Host.spawn_app b ~name:"echo" (fun ctx ->
         let c = PE.create_client ctx b.Snap.Host.pony ~name:"echo" () in
         while true do
           let m = PE.await_message ctx c in
           ignore (PE.send_message ctx m.PE.msg_conn ~bytes:1024 ())
         done));

  let completed = ref 0 in
  let worst_gap = ref 0 in
  ignore
    (Snap.Host.spawn_app a ~name:"pinger" (fun ctx ->
         let c = PE.create_client ctx a.Snap.Host.pony ~name:"pinger" () in
         Cpu.Thread.sleep ctx (T.us 300);
         let conn = PE.connect ctx c ~dst_host:1 ~dst_client:0 in
         let last = ref (Cpu.Thread.now ctx) in
         while true do
           ignore (PE.send_message ctx conn ~bytes:1024 ());
           let _reply = PE.await_message ctx c in
           incr completed;
           let now = Cpu.Thread.now ctx in
           worst_gap := max !worst_gap (now - !last);
           last := now;
           Cpu.Thread.sleep ctx (T.us 200)
         done));

  (* At t = 20 ms, upgrade the server's Snap to a new release: a second
     engine group (new instance) takes over engine by engine. *)
  ignore
    (Sim.Loop.at loop (T.ms 20) (fun () ->
         Printf.printf "[%5.1fms] starting transparent upgrade of host 1\n"
           (T.to_float_ms (Sim.Loop.now loop));
         let machine = b.Snap.Host.machine in
         let new_group =
           Engine.create_group ~machine ~name:"snap-v2"
             ~mode:(Engine.Dedicating { cores = 1 })
         in
         Upgrade.upgrade ~loop ~costs:(Cpu.Sched.costs machine)
           ~old_group:b.Snap.Host.group ~new_group
           ~extra_state_bytes:(fun _ -> 200_000_000)
           ~on_done:(fun reports ->
             List.iter
               (fun (r : Upgrade.report) ->
                 Printf.printf
                   "[%5.1fms] engine %-12s migrated: %d MB state, brownout \
                    %.0f ms, blackout %.0f ms\n"
                   (T.to_float_ms (Sim.Loop.now loop))
                   r.Upgrade.engine_name
                   (r.Upgrade.state_bytes / 1_000_000)
                   (T.to_float_ms r.Upgrade.brownout)
                   (T.to_float_ms r.Upgrade.blackout))
               reports)
           ()));

  Sim.Loop.run ~until:(T.ms 600) loop;
  Printf.printf
    "RPCs completed: %d; worst inter-reply gap: %.0f ms (the blackout, \
     absorbed by retransmission; the connection never dropped)\n"
    !completed
    (T.to_float_ms !worst_gap)
