(* The wider Snap dataplane (Figure 2): alongside Pony Express, the same
   engine group hosts a traffic-shaping engine (token-bucket bandwidth
   enforcement over Click-style elements) and a virtualization packet
   switch moving guest-VM traffic, all sharing the NIC.

   Run with: dune exec examples/host_dataplane.exe *)

module T = Sim.Time

let () =
  let loop = Sim.Loop.create ~seed:21 () in
  let fabric = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let directory = Pony.Express.Directory.create () in
  let host addr =
    Snap.Host.create ~loop ~fabric ~directory ~addr
      ~mode:(Engine.Dedicating { cores = 2 })
      ()
  in
  let a = host 0 and b = host 1 in

  (* A shaping engine on host 0 enforcing 2 Gbps on injected host
     traffic. *)
  let shaper =
    Snap.Shaper.create ~loop ~nic:a.Snap.Host.nic ~group:a.Snap.Host.group
      ~rate_gbps:2.0 ~burst_bytes:20_000 ()
  in
  let gen = Memory.Packet.Id_gen.create () in
  let offered = ref 0 in
  (* Offer ~8 Gbps of 1500-byte host packets for 10 ms. *)
  ignore
    (Sim.Loop.every loop (T.ns 1500) (fun () ->
         if Sim.Loop.now loop < T.ms 10 then begin
           incr offered;
           ignore
             (Snap.Shaper.submit shaper
                (Memory.Packet.make
                   ~id:(Memory.Packet.Id_gen.next gen)
                   ~src:0 ~dst:1 ~wire_bytes:1500 Memory.Packet.Empty ()))
         end));

  (* A virtual switch on host 1 carrying guest-VM traffic back toward
     host 0's guests. *)
  let vswitch =
    Snap.Vswitch.create ~loop ~nic:b.Snap.Host.nic ~group:b.Snap.Host.group
      ~rx_queue:7 ()
  in
  let guest = Snap.Vswitch.add_guest vswitch ~vip:42 in
  Snap.Vswitch.add_route vswitch ~vip:7 ~host:0;
  ignore
    (Sim.Loop.every loop (T.us 50) (fun () ->
         if Sim.Loop.now loop < T.ms 10 then
           ignore (Snap.Vswitch.guest_transmit vswitch guest ~dst_vip:7 ~bytes:1400)));

  Sim.Loop.run ~until:(T.ms 15) loop;
  Printf.printf "shaper: offered %d packets, forwarded %d, shaped away %d\n"
    !offered
    (Snap.Shaper.forwarded shaper)
    (Snap.Shaper.shaped_drops shaper);
  Printf.printf
    "shaped rate ~= %.2f Gbps (policy: 2.0) over 10 ms of 8 Gbps offered\n"
    (float_of_int (Snap.Shaper.forwarded shaper * 1500 * 8) /. 10e6);
  Printf.printf "vswitch: %d guest packets forwarded to the fabric, %d unroutable\n"
    (Snap.Vswitch.forwarded vswitch)
    (Snap.Vswitch.unroutable vswitch)
