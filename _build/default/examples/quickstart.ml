(* Quickstart: bring up two Snap hosts under one ToR switch, attach an
   application to each through the control plane, and exchange both a
   two-sided message and a one-sided read.

   Run with: dune exec examples/quickstart.exe *)

module T = Sim.Time
module PE = Pony.Express

let () =
  (* A simulation, a rack fabric, and the cluster name service. *)
  let loop = Sim.Loop.create ~seed:42 () in
  let fabric = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let directory = PE.Directory.create () in

  (* Each host gets a machine, NIC, control plane, an engine group
     (here: one dedicated spinning core) and the Pony Express module. *)
  let host addr =
    Snap.Host.create ~loop ~fabric ~directory ~addr
      ~mode:(Engine.Dedicating { cores = 1 })
      ()
  in
  let alpha = host 0 and beta = host 1 in

  (* The server application: authenticates with Snap, shares a memory
     region for one-sided access, and echoes one message. *)
  let region = Memory.Region.create ~id:1 ~size:4096 ~owner:"beta-app" () in
  Memory.Region.write_int64 region 128 0x5EED_F00DL;
  ignore
    (Snap.Host.spawn_app beta ~name:"server" (fun ctx ->
         let c = PE.create_client ctx beta.Snap.Host.pony ~name:"server" () in
         PE.register_region ctx c region;
         let m = PE.await_message ctx c in
         Printf.printf "[%6.1fus] server: got %d-byte message, replying\n"
           (T.to_float_us (Cpu.Thread.now ctx))
           m.PE.msg_bytes;
         ignore (PE.send_message ctx m.PE.msg_conn ~bytes:512 ())));

  (* The client: connect, send a message, await the reply, then read the
     server's memory without involving its application thread. *)
  ignore
    (Snap.Host.spawn_app alpha ~name:"client" (fun ctx ->
         let c = PE.create_client ctx alpha.Snap.Host.pony ~name:"client" () in
         Cpu.Thread.sleep ctx (T.us 200);
         let conn = PE.connect ctx c ~dst_host:1 ~dst_client:0 in
         ignore (PE.send_message ctx conn ~bytes:2048 ());
         (* Reap the send's own completion (transport accepted it). *)
         ignore (PE.await_completion ctx c);
         let reply = PE.await_message ctx c in
         Printf.printf "[%6.1fus] client: reply of %d bytes\n"
           (T.to_float_us (Cpu.Thread.now ctx))
           reply.PE.msg_bytes;
         let t0 = Cpu.Thread.now ctx in
         ignore (PE.one_sided_read ctx conn ~region:1 ~off:128 ~len:8);
         let comp = PE.await_completion ctx c in
         Printf.printf
           "[%6.1fus] client: one-sided read -> 0x%LX in %.1f us (no server \
            thread involved)\n"
           (T.to_float_us (Cpu.Thread.now ctx))
           (Option.value ~default:0L comp.PE.value)
           (T.to_float_us (Cpu.Thread.now ctx - t0))));

  Sim.Loop.run ~until:(T.ms 10) loop;
  Printf.printf "done at %.2f ms simulated\n"
    (T.to_float_ms (Sim.Loop.now loop))
