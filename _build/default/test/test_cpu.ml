(* Tests for the simulated CPU scheduler: classes, wakeups, C-states,
   accounting, preemption, throttling. *)

module T = Sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(cores = 4) () =
  let loop = Sim.Loop.create () in
  let m =
    Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default ~name:"m0" ~cores
  in
  (loop, m)

let test_thread_compute_accounting () =
  let loop, m = mk () in
  let done_at = ref (-1) in
  ignore
    (Cpu.Thread.spawn m ~name:"worker" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         Cpu.Thread.compute ctx (T.us 100);
         Cpu.Thread.compute ctx (T.us 50);
         done_at := Cpu.Thread.now ctx));
  Sim.Loop.run loop;
  check_int "app busy" (T.us 150) (Cpu.Sched.account_busy_ns m "app");
  check_bool "finished after at least 150us" true (!done_at >= T.us 150);
  check_bool "wakeup latency bounded" true (!done_at < T.us 170)

let test_thread_sleep () =
  let loop, m = mk () in
  let woke_at = ref 0 in
  ignore
    (Cpu.Thread.spawn m ~name:"sleeper" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         Cpu.Thread.sleep ctx (T.ms 5);
         woke_at := Cpu.Thread.now ctx));
  Sim.Loop.run loop;
  check_bool "slept at least 5ms" true (!woke_at >= T.ms 5);
  (* C-state exit + wakeup should stay well under 100us. *)
  check_bool "woke promptly" true (!woke_at < T.ms 5 + T.us 100)

let test_wait_wake () =
  let loop, m = mk () in
  let woke_at = ref (-1) in
  let t =
    Cpu.Thread.spawn m ~name:"waiter" ~account:"app"
      ~klass:(Cpu.Sched.Micro_quanta { runtime_pct = 0.9 }) (fun ctx ->
        Cpu.Thread.wait ctx;
        woke_at := Cpu.Thread.now ctx)
  in
  ignore (Sim.Loop.at loop (T.us 50) (fun () -> Cpu.Sched.wake t));
  Sim.Loop.run loop;
  check_bool "woke after signal" true (!woke_at >= T.us 50);
  check_bool "microquanta wake fast" true (!woke_at <= T.us 50 + T.us 40)

let test_wake_lost_race () =
  (* A wake delivered while the task is still running must not be lost. *)
  let loop, m = mk () in
  let rounds = ref 0 in
  let t =
    Cpu.Thread.spawn m ~name:"w" ~account:"app"
      ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
        Cpu.Thread.compute ctx (T.us 100);
        Cpu.Thread.wait ctx;
        incr rounds)
  in
  (* Wake at 10us: thread is mid-compute (running); when it later waits,
     the pending wake must resume it. *)
  ignore (Sim.Loop.at loop (T.us 10) (fun () -> Cpu.Sched.wake t));
  Sim.Loop.run loop;
  check_int "wait returned" 1 !rounds

let test_cfs_fair_share () =
  let loop, m = mk ~cores:1 () in
  let busy_a = ref 0 and busy_b = ref 0 in
  let spin_chunk ctx total =
    let remaining = ref total in
    while !remaining > 0 do
      let c = min !remaining (T.us 200) in
      Cpu.Thread.compute ctx c;
      remaining := !remaining - c
    done
  in
  let ta =
    Cpu.Thread.spawn m ~name:"a" ~account:"a"
      ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx -> spin_chunk ctx (T.ms 200))
  in
  let tb =
    Cpu.Thread.spawn m ~name:"b" ~account:"b"
      ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx -> spin_chunk ctx (T.ms 200))
  in
  Sim.Loop.run ~until:(T.ms 100) loop;
  busy_a := Cpu.Sched.task_busy_ns ta;
  busy_b := Cpu.Sched.task_busy_ns tb;
  let total = !busy_a + !busy_b in
  check_bool "both ran" true (!busy_a > 0 && !busy_b > 0);
  (* Equal-nice tasks should split the core roughly evenly. *)
  let ratio = float_of_int !busy_a /. float_of_int total in
  check_bool "fair split" true (ratio > 0.40 && ratio < 0.60)

let test_mq_priority_over_cfs () =
  (* One core hogged by a CFS task; an MQ task waking up should get the
     CPU within a bounded time (step granularity + context switch), not
     wait for CFS timeslices. *)
  let loop, m = mk ~cores:1 () in
  ignore
    (Cpu.Thread.spawn m ~name:"hog" ~account:"hog"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         for _ = 1 to 10_000 do
           Cpu.Thread.compute ctx (T.us 100)
         done));
  let latency = ref (-1) in
  let waker = ref T.zero in
  let t =
    Cpu.Thread.spawn m ~name:"rt" ~account:"rt"
      ~klass:(Cpu.Sched.Micro_quanta { runtime_pct = 0.5 }) (fun ctx ->
        Cpu.Thread.wait ctx;
        latency := T.sub (Cpu.Thread.now ctx) !waker)
  in
  ignore
    (Sim.Loop.at loop (T.ms 10) (fun () ->
         waker := Sim.Loop.now loop;
         Cpu.Sched.wake t));
  Sim.Loop.run ~until:(T.ms 20) loop;
  check_bool "mq ran" true (!latency >= 0);
  (* Bound: remaining chunk (<=100us) + context switch + wake latency. *)
  check_bool "mq latency bounded" true (!latency <= T.us 110)

let test_mq_throttling () =
  (* An MQ task with 20% bandwidth on an otherwise idle machine must not
     consume much more than 20% of one core. *)
  let loop, m = mk ~cores:1 () in
  let t =
    Cpu.Thread.spawn m ~name:"rt" ~account:"rt"
      ~klass:(Cpu.Sched.Micro_quanta { runtime_pct = 0.2 }) (fun ctx ->
        for _ = 1 to 1_000_000 do
          Cpu.Thread.compute ctx (T.us 50)
        done)
  in
  Sim.Loop.run ~until:(T.ms 100) loop;
  let frac = float_of_int (Cpu.Sched.task_busy_ns t) /. float_of_int (T.ms 100) in
  check_bool "throttled near 20%" true (frac > 0.15 && frac < 0.30)

let test_pinned_spin_accounting () =
  (* A dedicated spinning engine burns its core: busy ~ wall time. *)
  let loop, m = mk ~cores:2 () in
  let core = Cpu.Sched.reserve_core m in
  let t =
    Cpu.Sched.spawn m ~name:"engine" ~account:"snap"
      ~klass:(Cpu.Sched.Pinned core) ~idle:Cpu.Sched.Spin ~step:(fun () ->
        Cpu.Sched.Idle)
  in
  Cpu.Sched.start t;
  Sim.Loop.run ~until:(T.ms 10) loop;
  let busy = Cpu.Sched.task_busy_ns t in
  check_bool "spinning counts as busy" true (busy > T.ms 9);
  check_bool "snap account" true (Cpu.Sched.account_busy_ns m "snap" > T.ms 9)

let test_kick_spinning_task () =
  let loop, m = mk ~cores:2 () in
  let core = Cpu.Sched.reserve_core m in
  let work = Queue.create () in
  let processed = ref [] in
  let t =
    Cpu.Sched.spawn m ~name:"engine" ~account:"snap"
      ~klass:(Cpu.Sched.Pinned core) ~idle:Cpu.Sched.Spin ~step:(fun () ->
        match Queue.take_opt work with
        | Some v ->
            processed := (v, Sim.Loop.now loop) :: !processed;
            Cpu.Sched.Ran (T.us 1)
        | None -> Cpu.Sched.Idle)
  in
  Cpu.Sched.start t;
  ignore
    (Sim.Loop.at loop (T.ms 1) (fun () ->
         Queue.add 42 work;
         Cpu.Sched.kick t));
  Sim.Loop.run ~until:(T.ms 2) loop;
  match !processed with
  | [ (v, at) ] ->
      check_int "value" 42 v;
      check_bool "picked up almost immediately" true (at - T.ms 1 < T.us 1)
  | _ -> Alcotest.fail "expected exactly one processed item"

let test_cstate_wakeup_penalty () =
  (* After a long idle period the core sleeps; waking a task then incurs
     the C-state exit latency.  Compare a wake after 10us of idleness
     (awake core) against one after 10ms (sleeping core). *)
  let wake_delay idle_gap =
    let loop, m = mk ~cores:1 () in
    let woke = ref 0 and signaled = ref 0 in
    let t =
      Cpu.Thread.spawn m ~name:"w" ~account:"app"
        ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
          Cpu.Thread.wait ctx;
          woke := Cpu.Thread.now ctx)
    in
    ignore
      (Sim.Loop.at loop idle_gap (fun () ->
           signaled := Sim.Loop.now loop;
           Cpu.Sched.wake t));
    Sim.Loop.run loop;
    !woke - !signaled
  in
  let fast = wake_delay (T.us 10) in
  let slow = wake_delay (T.ms 10) in
  check_bool "sleeping core pays C-state exit" true
    (slow - fast >= Sim.Costs.default.Sim.Costs.cstate_exit - T.us 1)

let test_nonpreemptible_blocks_mq () =
  (* All cores busy; one runs a non-preemptible kernel section.  An MQ
     wakeup must wait for the section to finish (Figure 7(b) pathology),
     far longer than the normal MQ wake latency. *)
  let loop, m = mk ~cores:1 () in
  ignore
    (Cpu.Thread.spawn m ~name:"mmap-antagonist" ~account:"antag"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         for _ = 1 to 1000 do
           Cpu.Thread.compute_nonpreemptible ctx (T.ms 2)
         done));
  let latency = ref (-1) in
  let waker = ref T.zero in
  let t =
    Cpu.Thread.spawn m ~name:"rt" ~account:"rt"
      ~klass:(Cpu.Sched.Micro_quanta { runtime_pct = 0.5 }) (fun ctx ->
        Cpu.Thread.wait ctx;
        latency := T.sub (Cpu.Thread.now ctx) !waker)
  in
  ignore
    (Sim.Loop.at loop (T.ms 10 + T.us 100) (fun () ->
         waker := Sim.Loop.now loop;
         Cpu.Sched.wake t));
  Sim.Loop.run ~until:(T.ms 30) loop;
  check_bool "mq ran" true (!latency >= 0);
  check_bool "delayed by non-preemptible section" true (!latency > T.us 500)

let test_interrupt_accounting () =
  let loop, m = mk ~cores:2 () in
  let handled = ref false in
  Cpu.Sched.interrupt m ~cost:(T.us 5) (fun () -> handled := true);
  Sim.Loop.run loop;
  check_bool "handler ran" true !handled;
  check_int "softirq charged" (T.us 5) (Cpu.Sched.account_busy_ns m "softirq")

let test_interrupt_steals_from_running () =
  (* Interrupt landing on a busy core delays the running task. *)
  let loop, m = mk ~cores:1 () in
  let done_at = ref 0 in
  ignore
    (Cpu.Thread.spawn m ~name:"w" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         Cpu.Thread.compute ctx (T.us 100);
         Cpu.Thread.compute ctx (T.us 100);
         done_at := Cpu.Thread.now ctx));
  ignore
    (Sim.Loop.at loop (T.us 50) (fun () ->
         Cpu.Sched.interrupt m ~core:0 ~cost:(T.us 30) (fun () -> ())));
  Sim.Loop.run loop;
  check_bool "task delayed by steal" true (!done_at >= T.us 230)

let test_reserve_core_exclusion () =
  let _loop, m = mk ~cores:2 () in
  let c1 = Cpu.Sched.reserve_core m in
  let c2 = Cpu.Sched.reserve_core m in
  check_bool "distinct" true (c1 <> c2);
  Alcotest.check_raises "exhausted" (Failure "Sched.reserve_core: none left")
    (fun () -> ignore (Cpu.Sched.reserve_core m))

let test_spawn_validation () =
  let _loop, m = mk ~cores:2 () in
  Alcotest.check_raises "bad nice" (Invalid_argument "Sched.spawn: nice")
    (fun () ->
      ignore
        (Cpu.Sched.spawn m ~name:"x" ~account:"x"
           ~klass:(Cpu.Sched.Cfs { nice = 25 }) ~idle:Cpu.Sched.Block
           ~step:(fun () -> Cpu.Sched.Finished)));
  Alcotest.check_raises "unreserved pin"
    (Invalid_argument "Sched.spawn: pinned core not reserved") (fun () ->
      ignore
        (Cpu.Sched.spawn m ~name:"x" ~account:"x" ~klass:(Cpu.Sched.Pinned 0)
           ~idle:Cpu.Sched.Spin
           ~step:(fun () -> Cpu.Sched.Finished)))

let test_multicore_parallelism () =
  (* Two CPU-bound tasks on two cores should both finish in ~wall time,
     not 2x. *)
  let loop, m = mk ~cores:2 () in
  let finished = ref 0 in
  let body ctx =
    for _ = 1 to 100 do
      Cpu.Thread.compute ctx (T.us 100)
    done;
    incr finished
  in
  ignore (Cpu.Thread.spawn m ~name:"a" ~account:"a" ~klass:(Cpu.Sched.Cfs { nice = 0 }) body);
  ignore (Cpu.Thread.spawn m ~name:"b" ~account:"b" ~klass:(Cpu.Sched.Cfs { nice = 0 }) body);
  Sim.Loop.run ~until:(T.ms 11) loop;
  check_int "both finished in parallel" 2 !finished

let () =
  Alcotest.run "cpu"
    [
      ( "threads",
        [
          Alcotest.test_case "compute accounting" `Quick test_thread_compute_accounting;
          Alcotest.test_case "sleep" `Quick test_thread_sleep;
          Alcotest.test_case "wait/wake" `Quick test_wait_wake;
          Alcotest.test_case "wake race" `Quick test_wake_lost_race;
          Alcotest.test_case "multicore" `Quick test_multicore_parallelism;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "cfs fair share" `Quick test_cfs_fair_share;
          Alcotest.test_case "mq priority" `Quick test_mq_priority_over_cfs;
          Alcotest.test_case "mq throttling" `Quick test_mq_throttling;
          Alcotest.test_case "nonpreemptible" `Quick test_nonpreemptible_blocks_mq;
        ] );
      ( "engines",
        [
          Alcotest.test_case "pinned spin accounting" `Quick test_pinned_spin_accounting;
          Alcotest.test_case "kick" `Quick test_kick_spinning_task;
        ] );
      ( "system",
        [
          Alcotest.test_case "cstate penalty" `Quick test_cstate_wakeup_penalty;
          Alcotest.test_case "interrupt accounting" `Quick test_interrupt_accounting;
          Alcotest.test_case "interrupt steal" `Quick test_interrupt_steals_from_running;
          Alcotest.test_case "reserve cores" `Quick test_reserve_core_exclusion;
          Alcotest.test_case "spawn validation" `Quick test_spawn_validation;
        ] );
    ]
