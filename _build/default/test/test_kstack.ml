(* Tests for the baseline kernel TCP stack model. *)

module T = Sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type host = { m : Cpu.Sched.machine; stack : Kstack.t }

let mk_pair ?(busy_poll = false) ?(mtu = 4096) ?(rx_slots = 4096)
    ?(fab_cfg = Fabric.default_config) () =
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config:fab_cfg ~hosts:2 in
  let mk addr =
    let m =
      Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default
        ~name:(Printf.sprintf "m%d" addr) ~cores:8
    in
    let nic =
      Nic.create ~loop ~machine:m ~fabric:fab ~addr
        { Nic.default_config with Nic.mtu; Nic.rx_ring_slots = rx_slots }
    in
    let stack = Kstack.create ~loop ~machine:m ~nic ~busy_poll () in
    { m; stack }
  in
  (loop, mk 0, mk 1)

let test_connect () =
  let loop, a, b = mk_pair () in
  let accepted = ref 0 in
  Kstack.listen b.stack ~port:80 ~on_accept:(fun _ -> incr accepted);
  let connected = ref false in
  ignore
    (Cpu.Thread.spawn a.m ~name:"client" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         let _sock = Kstack.connect ctx a.stack ~dst:1 ~port:80 in
         connected := true));
  Sim.Loop.run ~until:(T.ms 50) loop;
  check_bool "connected" true !connected;
  check_int "accepted" 1 !accepted;
  check_int "client sees stream" 1 (Kstack.active_streams a.stack);
  check_int "server sees stream" 1 (Kstack.active_streams b.stack)

let run_transfer ?(busy_poll = false) ?(mtu = 4096) ~total ~chunk () =
  let loop, a, b = mk_pair ~busy_poll ~mtu () in
  let received = ref 0 in
  let finish_time = ref 0 in
  Kstack.listen b.stack ~port:80 ~on_accept:(fun sock ->
      ignore
        (Cpu.Thread.spawn b.m ~name:"server" ~account:"app"
           ~klass:(Cpu.Sched.Cfs { nice = 0 })
           ~idle:(if busy_poll then Cpu.Sched.Spin else Cpu.Sched.Block)
           (fun ctx ->
             while !received < total do
               received := !received + Kstack.recv ctx sock ~max:(1 lsl 20)
             done;
             finish_time := Cpu.Thread.now ctx)));
  ignore
    (Cpu.Thread.spawn a.m ~name:"client" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 })
       ~idle:(if busy_poll then Cpu.Sched.Spin else Cpu.Sched.Block)
       (fun ctx ->
         let sock = Kstack.connect ctx a.stack ~dst:1 ~port:80 in
         let sent = ref 0 in
         while !sent < total do
           let n = min chunk (total - !sent) in
           Kstack.send ctx sock ~bytes:n;
           sent := !sent + n
         done));
  Sim.Loop.run ~until:(T.sec 2) loop;
  (!received, !finish_time, a, b)

let test_stream_delivery () =
  let total = 4 * 1024 * 1024 in
  let received, finish, _a, _b = run_transfer ~total ~chunk:65536 () in
  check_int "all bytes delivered" total received;
  check_bool "finished" true (finish > 0)

let test_stream_throughput_plausible () =
  (* Single stream should land in the tens of Gbps (Table 1: ~22). *)
  let total = 64 * 1024 * 1024 in
  let received, finish, _, _ = run_transfer ~total ~chunk:65536 () in
  check_int "complete" total received;
  let gbps = float_of_int total *. 8.0 /. float_of_int finish in
  check_bool
    (Printf.sprintf "throughput plausible (%.1f Gbps)" gbps)
    true
    (gbps > 10.0 && gbps < 40.0)

let test_busy_poll_transfer () =
  let total = 1024 * 1024 in
  let received, _, _, _ = run_transfer ~busy_poll:true ~total ~chunk:65536 () in
  check_int "all bytes delivered" total received

let test_rr_latency () =
  (* Ping-pong small messages; RTT should be in the tens of
     microseconds (Figure 6(a): ~23 us for TCP). *)
  let loop, a, b = mk_pair () in
  let rtts = ref [] in
  Kstack.listen b.stack ~port:80 ~on_accept:(fun sock ->
      ignore
        (Cpu.Thread.spawn b.m ~name:"server" ~account:"app"
           ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
             for _ = 1 to 20 do
               let n = Kstack.recv ctx sock ~max:4096 in
               Kstack.send ctx sock ~bytes:n
             done)));
  ignore
    (Cpu.Thread.spawn a.m ~name:"client" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         let sock = Kstack.connect ctx a.stack ~dst:1 ~port:80 in
         for _ = 1 to 20 do
           let t0 = Cpu.Thread.now ctx in
           Kstack.send ctx sock ~bytes:64;
           let _n = Kstack.recv ctx sock ~max:4096 in
           rtts := (Cpu.Thread.now ctx - t0) :: !rtts
         done));
  Sim.Loop.run ~until:(T.sec 1) loop;
  check_int "20 rtts" 20 (List.length !rtts);
  let avg =
    List.fold_left ( + ) 0 !rtts / List.length !rtts
  in
  check_bool
    (Printf.sprintf "rtt in range (%d ns)" avg)
    true
    (avg > T.us 10 && avg < T.us 60)

let test_retransmit_on_loss () =
  (* Tiny NIC receive rings overrun when the wire outpaces softirq
     processing, forcing drops; the transfer must still complete via
     retransmission. *)
  let loop, a, b = mk_pair ~rx_slots:16 () in
  let total = 2 * 1024 * 1024 in
  let received = ref 0 in
  let client_sock = ref None in
  Kstack.listen b.stack ~port:80 ~on_accept:(fun sock ->
      ignore
        (Cpu.Thread.spawn b.m ~name:"server" ~account:"app"
           ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
             while !received < total do
               received := !received + Kstack.recv ctx sock ~max:(1 lsl 20)
             done)));
  ignore
    (Cpu.Thread.spawn a.m ~name:"client" ~account:"app"
       ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
         let sock = Kstack.connect ctx a.stack ~dst:1 ~port:80 in
         client_sock := Some sock;
         let sent = ref 0 in
         while !sent < total do
           Kstack.send ctx sock ~bytes:65536;
           sent := !sent + 65536
         done));
  Sim.Loop.run ~until:(T.sec 5) loop;
  check_int "delivered despite loss" total !received;
  match !client_sock with
  | Some s -> check_bool "retransmissions happened" true (Kstack.retransmits s > 0)
  | None -> Alcotest.fail "no client socket"

let test_many_streams_slower_than_one () =
  (* Table 1: 200 simultaneously active streams degrade per-byte
     efficiency (22 -> 12.4 Gbps).  With RFS-style softirq serialization
     (one application job), the locality multiplier makes many-stream
     aggregate throughput lower than a single stream moving the same
     total bytes. *)
  let run n_streams =
    let loop, a, b = mk_pair () in
    let per_stream = (32 * 1024 * 1024) / n_streams in
    let total = per_stream * n_streams in
    let received = ref 0 in
    let finish = ref 0 in
    Kstack.listen b.stack ~port:80 ~on_accept:(fun sock ->
        ignore
          (Cpu.Thread.spawn b.m ~name:"server" ~account:"app"
             ~klass:(Cpu.Sched.Cfs { nice = 0 }) (fun ctx ->
               let got = ref 0 in
               while !got < per_stream do
                 let n = Kstack.recv ctx sock ~max:(1 lsl 20) in
                 got := !got + n;
                 received := !received + n
               done;
               if !received >= total then finish := Cpu.Thread.now ctx)));
    for i = 0 to n_streams - 1 do
      ignore
        (Cpu.Thread.spawn a.m
           ~name:(Printf.sprintf "client%d" i)
           ~account:"app"
           ~klass:(Cpu.Sched.Cfs { nice = 0 })
           (fun ctx ->
             let sock = Kstack.connect ctx a.stack ~dst:1 ~port:80 in
             let sent = ref 0 in
             while !sent < per_stream do
               let n = min 65536 (per_stream - !sent) in
               Kstack.send ctx sock ~bytes:n;
               sent := !sent + n
             done))
    done;
    Sim.Loop.run ~until:(T.sec 20) loop;
    check_int (Printf.sprintf "%d streams complete" n_streams) total !received;
    float_of_int total *. 8.0 /. float_of_int !finish
  in
  let one = run 1 in
  let many = run 64 in
  check_bool
    (Printf.sprintf "one stream faster (%.1f vs %.1f Gbps)" one many)
    true
    (one > many *. 1.2)

let () =
  Alcotest.run "kstack"
    [
      ( "tcp",
        [
          Alcotest.test_case "connect" `Quick test_connect;
          Alcotest.test_case "stream delivery" `Quick test_stream_delivery;
          Alcotest.test_case "throughput plausible" `Quick test_stream_throughput_plausible;
          Alcotest.test_case "busy poll" `Quick test_busy_poll_transfer;
          Alcotest.test_case "rr latency" `Quick test_rr_latency;
          Alcotest.test_case "retransmit on loss" `Quick test_retransmit_on_loss;
          Alcotest.test_case "stream scaling penalty" `Slow test_many_streams_slower_than_one;
        ] );
    ]
