(* Tests for histograms, summaries, and series. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_hist_empty () =
  let h = Stats.Histogram.create () in
  check_int "count" 0 (Stats.Histogram.count h);
  check_int "quantile" 0 (Stats.Histogram.quantile h 0.5);
  check_int "min" 0 (Stats.Histogram.min_value h)

let test_hist_exact_small () =
  (* Values below 2^(sub_bits+1) are recorded exactly. *)
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.record h) [ 1; 2; 3; 4; 5 ];
  check_int "p50" 3 (Stats.Histogram.percentile h 50.);
  check_int "min" 1 (Stats.Histogram.min_value h);
  check_int "max" 5 (Stats.Histogram.max_value h);
  check_int "sum" 15 (Stats.Histogram.sum h)

let test_hist_relative_error () =
  let h = Stats.Histogram.create () in
  let v = 1_234_567 in
  Stats.Histogram.record h v;
  let q = Stats.Histogram.quantile h 1.0 in
  (* max_value is exact *)
  check_int "max exact" v (Stats.Histogram.max_value h);
  let err = abs (q - v) in
  check_bool "within 2% relative error" true
    (float_of_int err /. float_of_int v < 0.02)

let test_hist_quantiles_order () =
  let h = Stats.Histogram.create () in
  for i = 1 to 10_000 do
    Stats.Histogram.record h i
  done;
  let p50 = Stats.Histogram.percentile h 50. in
  let p90 = Stats.Histogram.percentile h 90. in
  let p99 = Stats.Histogram.percentile h 99. in
  check_bool "p50 near 5000" true (abs (p50 - 5000) < 200);
  check_bool "p90 near 9000" true (abs (p90 - 9000) < 300);
  check_bool "p99 near 9900" true (abs (p99 - 9900) < 300);
  check_bool "ordered" true (p50 <= p90 && p90 <= p99)

let test_hist_merge () =
  let a = Stats.Histogram.create () in
  let b = Stats.Histogram.create () in
  for i = 1 to 100 do
    Stats.Histogram.record a i
  done;
  for i = 101 to 200 do
    Stats.Histogram.record b i
  done;
  Stats.Histogram.merge_into ~src:b ~dst:a;
  check_int "count" 200 (Stats.Histogram.count a);
  check_int "max" 200 (Stats.Histogram.max_value a);
  check_int "min" 1 (Stats.Histogram.min_value a)

let test_hist_negative_clamped () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record h (-5);
  check_int "clamped to zero" 0 (Stats.Histogram.max_value h);
  check_int "counted" 1 (Stats.Histogram.count h)

let test_hist_record_n () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.record_n h 10 ~n:5;
  check_int "count" 5 (Stats.Histogram.count h);
  check_int "sum" 50 (Stats.Histogram.sum h)

let test_hist_cdf () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.record h i
  done;
  let cdf = Stats.Histogram.cdf h ~points:10 () in
  check_int "ten points" 10 (List.length cdf);
  let fractions = List.map snd cdf in
  check_bool "monotone fractions" true
    (List.sort compare fractions = fractions)

let hist_prop_quantile_bounds =
  QCheck.Test.make ~name:"quantile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (int_bound 1_000_000)) (float_bound_inclusive 1.0))
    (fun (values, q) ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.record h) values;
      let v = Stats.Histogram.quantile h q in
      v >= Stats.Histogram.min_value h && v <= Stats.Histogram.max_value h)

let hist_prop_mean_matches =
  QCheck.Test.make ~name:"histogram mean equals arithmetic mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 100_000))
    (fun values ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.record h) values;
      let expect =
        float_of_int (List.fold_left ( + ) 0 values)
        /. float_of_int (List.length values)
      in
      Float.abs (Stats.Histogram.mean h -. expect) < 1e-6)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "std" (sqrt (32.0 /. 7.0)) (Stats.Summary.std s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max_value s);
  check_int "count" 8 (Stats.Summary.count s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "std 0" 0.0 (Stats.Summary.std s)

let test_series () =
  let s = Stats.Series.create ~name:"iops" () in
  for i = 1 to 100 do
    Stats.Series.add s (Sim.Time.ms i) (float_of_int (i * 10))
  done;
  check_int "length" 100 (Stats.Series.length s);
  Alcotest.(check (float 1e-9)) "max" 1000.0 (Stats.Series.max_value s);
  Alcotest.(check (float 1e-9)) "last" 1000.0 (Stats.Series.last_value s);
  Alcotest.(check string) "name" "iops" (Stats.Series.name s)

let () =
  Alcotest.run "stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "exact small values" `Quick test_hist_exact_small;
          Alcotest.test_case "relative error" `Quick test_hist_relative_error;
          Alcotest.test_case "quantile order" `Quick test_hist_quantiles_order;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "negative clamp" `Quick test_hist_negative_clamped;
          Alcotest.test_case "record_n" `Quick test_hist_record_n;
          Alcotest.test_case "cdf" `Quick test_hist_cdf;
          QCheck_alcotest.to_alcotest hist_prop_quantile_bounds;
          QCheck_alcotest.to_alcotest hist_prop_mean_matches;
        ] );
      ( "summary",
        [
          Alcotest.test_case "welford" `Quick test_summary;
          Alcotest.test_case "empty" `Quick test_summary_empty;
        ] );
      ("series", [ Alcotest.test_case "basic" `Quick test_series ]);
    ]
