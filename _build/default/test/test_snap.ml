(* Tests for the control plane, the shaper/vswitch engines, transparent
   upgrades, and workload-level invariants. *)

module T = Sim.Time
module PE = Pony.Express

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_host ?(hosts = 2) ?(mode = Engine.Dedicating { cores = 2 }) () =
  let loop = Sim.Loop.create ~seed:13 () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts in
  let dir = PE.Directory.create () in
  let hs =
    List.init hosts (fun addr ->
        Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr ~mode ())
  in
  (loop, hs)

(* -- Control plane ------------------------------------------------------- *)

type Control.message += Echo of int | Echoed of int

let test_control_rpc () =
  let loop, hosts = mk_host () in
  let h = List.hd hosts in
  Control.register_service h.Snap.Host.control ~service:"echo" (fun msg ->
      match msg with Echo n -> Echoed (n + 1) | m -> m);
  let got = ref 0 in
  ignore
    (Snap.Host.spawn_app h ~name:"app" (fun ctx ->
         match Control.call ctx h.Snap.Host.control ~service:"echo" (Echo 41) with
         | Echoed n -> got := n
         | _ -> ()));
  Sim.Loop.run ~until:(T.ms 1) loop;
  check_int "rpc round trip" 42 !got

let test_control_unknown_service () =
  let loop, hosts = mk_host () in
  let h = List.hd hosts in
  let failed = ref false in
  ignore
    (Snap.Host.spawn_app h ~name:"app" (fun ctx ->
         match Control.call ctx h.Snap.Host.control ~service:"nope" (Echo 1) with
         | Control.Error_no_service "nope" -> failed := true
         | _ -> ()));
  Sim.Loop.run ~until:(T.ms 1) loop;
  check_bool "unknown service errors" true !failed

let test_control_memory_accounting () =
  let loop, hosts = mk_host () in
  let h = List.hd hosts in
  ignore
    (Snap.Host.spawn_app h ~name:"app" (fun ctx ->
         let c = PE.create_client ctx h.Snap.Host.pony ~name:"appc" () in
         let r1 = Memory.Region.create ~id:1 ~size:4096 ~owner:"appc" () in
         let r2 = Memory.Region.create ~id:2 ~size:8192 ~owner:"appc" () in
         PE.register_region ctx c r1;
         PE.register_region ctx c r2));
  Sim.Loop.run ~until:(T.ms 2) loop;
  check_int "memory charged to client" (4096 + 8192)
    (Control.memory_charged h.Snap.Host.control ~client:"appc");
  check_bool "authenticated" true
    (Control.is_authenticated h.Snap.Host.control ~client:"appc")

let test_mailbox_via_control () =
  let loop, hosts = mk_host () in
  let h = List.hd hosts in
  let ran = ref false in
  ignore
    (Snap.Host.spawn_app h ~name:"app" (fun ctx ->
         let eng = PE.engine_handle h.Snap.Host.pony 0 in
         Control.post_to_engine ctx eng (fun () -> ran := true)));
  Sim.Loop.run ~until:(T.ms 2) loop;
  check_bool "mailbox work executed on engine" true !ran

(* -- Shaper ---------------------------------------------------------------- *)

let test_shaper_enforces_rate () =
  let loop, hosts = mk_host () in
  let a = List.hd hosts and b = List.nth hosts 1 in
  ignore b;
  let shaper =
    Snap.Shaper.create ~loop ~nic:a.Snap.Host.nic ~group:a.Snap.Host.group
      ~rate_gbps:1.0 ~burst_bytes:10_000 ()
  in
  let gen = Memory.Packet.Id_gen.create () in
  (* Offer 4 Gbps for 10 ms. *)
  ignore
    (Sim.Loop.every loop (T.ns 3000) (fun () ->
         if Sim.Loop.now loop < T.ms 10 then
           ignore
             (Snap.Shaper.submit shaper
                (Memory.Packet.make
                   ~id:(Memory.Packet.Id_gen.next gen)
                   ~src:0 ~dst:1 ~wire_bytes:1500 Memory.Packet.Empty ()))));
  Sim.Loop.run ~until:(T.ms 12) loop;
  let shaped_gbps =
    float_of_int (Snap.Shaper.forwarded shaper * 1500 * 8) /. 10e6
  in
  check_bool
    (Printf.sprintf "rate near policy (%.2f Gbps)" shaped_gbps)
    true
    (shaped_gbps > 0.8 && shaped_gbps < 1.3);
  check_bool "drops happened" true (Snap.Shaper.shaped_drops shaper > 0)

(* -- Vswitch ---------------------------------------------------------------- *)

let test_vswitch_routes_guest_traffic () =
  let loop, hosts = mk_host () in
  let a = List.hd hosts and b = List.nth hosts 1 in
  let vs_a =
    Snap.Vswitch.create ~loop ~nic:a.Snap.Host.nic ~group:a.Snap.Host.group
      ~rx_queue:7 ()
  in
  let vs_b =
    Snap.Vswitch.create ~loop ~nic:b.Snap.Host.nic ~group:b.Snap.Host.group
      ~rx_queue:7 ()
  in
  (* Steer Vnet packets to ring 7 on both NICs. *)
  List.iter
    (fun h ->
      let nic = h.Snap.Host.nic in
      Nic.install_steering nic (fun pkt ->
          match pkt.Memory.Packet.payload with
          | Snap.Vswitch.Vnet _ -> 7
          | Pony.Wire.Pony { flow; _ } -> flow.Pony.Wire.dst_engine
          | _ -> 0))
    [ a; b ];
  let g1 = Snap.Vswitch.add_guest vs_a ~vip:1 in
  let g2 = Snap.Vswitch.add_guest vs_b ~vip:2 in
  Snap.Vswitch.add_route vs_a ~vip:2 ~host:1;
  Snap.Vswitch.add_route vs_b ~vip:1 ~host:0;
  for _ = 1 to 20 do
    ignore (Snap.Vswitch.guest_transmit vs_a g1 ~dst_vip:2 ~bytes:1000)
  done;
  (* Unroutable destination. *)
  ignore (Snap.Vswitch.guest_transmit vs_a g1 ~dst_vip:99 ~bytes:1000);
  Sim.Loop.run ~until:(T.ms 5) loop;
  check_int "guest packets delivered" 20
    (Squeue.Spsc.length (Snap.Vswitch.guest_rx_ring g2));
  check_int "forwarded" 20 (Snap.Vswitch.forwarded vs_a);
  check_int "unroutable dropped" 1 (Snap.Vswitch.unroutable vs_a)

(* -- Upgrade ---------------------------------------------------------------- *)

let test_upgrade_blackout_model () =
  let costs = Sim.Costs.default in
  let b = Upgrade.blackout_of ~costs ~state_bytes:400_000_000 in
  (* 2 x 4ms filter updates + 2 x (400MB / 2B-per-ns) = 8ms + 400ms. *)
  check_int "blackout formula" (T.ms 408) b

let test_upgrade_migrates_and_traffic_survives () =
  let r =
    Workloads.Upgrade_fleet.run ~machines:2 ~engines_per_machine:2
      ~state_median_mb:100.0 ()
  in
  check_int "all engines migrated" 4 r.Workloads.Upgrade_fleet.engines_migrated;
  check_bool "traffic survived" true (r.messages_delivered_during > 0);
  check_bool "median blackout plausible" true
    (r.median > T.ms 20 && r.median < T.sec 2)

let test_upgrade_engine_processes_after_move () =
  (* An engine must keep processing after migrating groups. *)
  let loop, hosts = mk_host () in
  let a = List.hd hosts and b = List.nth hosts 1 in
  let delivered = ref 0 in
  ignore
    (Snap.Host.spawn_app b ~name:"echo" (fun ctx ->
         let c = PE.create_client ctx b.Snap.Host.pony ~name:"echo" () in
         while true do
           let m = PE.await_message ctx c in
           ignore m;
           incr delivered
         done));
  ignore
    (Snap.Host.spawn_app a ~name:"src" (fun ctx ->
         let c = PE.create_client ctx a.Snap.Host.pony ~name:"src" () in
         Cpu.Thread.sleep ctx (T.us 300);
         let conn = PE.connect ctx c ~dst_host:1 ~dst_client:0 in
         while true do
           ignore (PE.send_message ctx conn ~bytes:128 ());
           ignore (PE.await_completion ctx c);
           Cpu.Thread.sleep ctx (T.us 200)
         done));
  let report = ref [] in
  ignore
    (Sim.Loop.at loop (T.ms 5) (fun () ->
         let machine = b.Snap.Host.machine in
         let ng =
           Engine.create_group ~machine ~name:"v2"
             ~mode:(Engine.Dedicating { cores = 1 })
         in
         Upgrade.upgrade ~loop ~costs:(Cpu.Sched.costs machine)
           ~old_group:b.Snap.Host.group ~new_group:ng
           ~extra_state_bytes:(fun _ -> 1_000_000)
           ~on_done:(fun rs -> report := rs)
           ()));
  Sim.Loop.run ~until:(T.ms 60) loop;
  check_bool "upgrade completed" true (List.length !report = 1);
  let before = !delivered in
  Sim.Loop.run ~until:(T.ms 90) loop;
  check_bool "messages flow after migration" true (!delivered > before)

(* -- Workload sanity ---------------------------------------------------------- *)

let test_analytics_correct_batching () =
  let r = Workloads.Analytics.run ~clients:1 ~outstanding:4 ~duration:(T.ms 20) () in
  check_bool "IOPS positive" true (r.Workloads.Analytics.mean_iops > 0.0);
  check_bool "single engine core" true (r.server_engine_cores <= 1.05)

let test_a2a_small () =
  let cfg =
    {
      Workloads.All_to_all.default_config with
      Workloads.All_to_all.hosts = 4;
      jobs_per_host = 2;
      offered_gbps_per_host = 4.0;
      window = T.ms 25;
    }
  in
  let r =
    Workloads.All_to_all.run
      (Workloads.All_to_all.Pony (Engine.Spreading { runtime_pct = 1.0 }))
      cfg
  in
  check_bool "achieved near offered" true
    (r.Workloads.All_to_all.achieved_gbps > 1.5
    && r.Workloads.All_to_all.achieved_gbps < 8.0);
  check_bool "prober sampled" true (Stats.Histogram.count r.prober > 10)

let () =
  Alcotest.run "snap"
    [
      ( "control",
        [
          Alcotest.test_case "rpc" `Quick test_control_rpc;
          Alcotest.test_case "unknown service" `Quick test_control_unknown_service;
          Alcotest.test_case "memory accounting" `Quick test_control_memory_accounting;
          Alcotest.test_case "post to engine" `Quick test_mailbox_via_control;
        ] );
      ( "engines",
        [
          Alcotest.test_case "shaper rate" `Quick test_shaper_enforces_rate;
          Alcotest.test_case "vswitch routing" `Quick test_vswitch_routes_guest_traffic;
        ] );
      ( "upgrade",
        [
          Alcotest.test_case "blackout model" `Quick test_upgrade_blackout_model;
          Alcotest.test_case "fleet migrate" `Slow test_upgrade_migrates_and_traffic_survives;
          Alcotest.test_case "engine survives move" `Quick test_upgrade_engine_processes_after_move;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "analytics" `Slow test_analytics_correct_batching;
          Alcotest.test_case "all-to-all" `Slow test_a2a_small;
        ] );
    ]
