test/test_net.ml: Alcotest Cpu Fabric List Memory Nic Printf Sim Squeue
