test/test_memory.ml: Alcotest Bytes Gen List Memory QCheck QCheck_alcotest
