test/test_queue.ml: Alcotest List QCheck QCheck_alcotest Squeue
