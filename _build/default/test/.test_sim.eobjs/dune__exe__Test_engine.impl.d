test/test_engine.ml: Alcotest Cpu Engine Memory Option Sim Squeue
