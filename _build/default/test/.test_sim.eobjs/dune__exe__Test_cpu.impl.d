test/test_cpu.ml: Alcotest Cpu Queue Sim
