test/test_kstack.mli:
