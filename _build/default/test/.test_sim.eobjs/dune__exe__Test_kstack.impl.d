test/test_kstack.ml: Alcotest Cpu Fabric Kstack List Nic Printf Sim
