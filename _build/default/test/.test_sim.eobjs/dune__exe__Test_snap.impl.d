test/test_snap.ml: Alcotest Control Cpu Engine Fabric List Memory Nic Pony Printf Sim Snap Squeue Stats Upgrade Workloads
