test/test_snap.mli:
