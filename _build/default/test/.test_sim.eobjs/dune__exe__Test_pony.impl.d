test/test_pony.ml: Alcotest Control Cpu Engine Fabric List Memory Nic Option Pony Printf Sim Snap
