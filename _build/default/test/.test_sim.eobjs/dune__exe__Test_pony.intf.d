test/test_pony.mli:
