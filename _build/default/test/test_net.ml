(* Tests for the fabric and NIC models. *)

module T = Sim.Time
module P = Memory.Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_pkt ?(id = 0) ?(src = 0) ?(dst = 1) ?(flow = 0) ?(qos = 0) bytes =
  P.make ~id ~src ~dst ~flow_hash:flow ~qos ~wire_bytes:bytes P.Empty ()

let test_fabric_delivery_latency () =
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let arrived = ref (-1) in
  Fabric.attach fab ~addr:1 ~rx:(fun _ -> arrived := Sim.Loop.now loop);
  Fabric.attach fab ~addr:0 ~rx:(fun _ -> ());
  Fabric.send fab (mk_pkt 1000);
  Sim.Loop.run loop;
  (* prop 500 + switch 300 + serialization 80 (1000B @ 100Gbps) + prop 500 *)
  check_int "latency" 1380 !arrived;
  check_int "delivered" 1 (Fabric.delivered fab);
  check_int "bytes" 1000 (Fabric.delivered_bytes fab)

let test_fabric_queueing () =
  (* Two packets to the same port serialize one after the other. *)
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let times = ref [] in
  Fabric.attach fab ~addr:1 ~rx:(fun _ -> times := Sim.Loop.now loop :: !times);
  Fabric.attach fab ~addr:0 ~rx:(fun _ -> ());
  Fabric.send fab (mk_pkt 10_000);
  Fabric.send fab (mk_pkt 10_000);
  Sim.Loop.run loop;
  match List.rev !times with
  | [ a; b ] ->
      (* 10 kB at 100 Gbps = 800 ns serialization; the second waits for
         the first. *)
      check_int "gap equals serialization" 800 (b - a)
  | _ -> Alcotest.fail "expected two deliveries"

let test_fabric_qos_priority () =
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
  let order = ref [] in
  Fabric.attach fab ~addr:1 ~rx:(fun p -> order := p.P.id :: !order);
  Fabric.attach fab ~addr:0 ~rx:(fun _ -> ());
  (* Fill the port with low-priority traffic, then send one high-priority
     packet; it must overtake the queued low-priority ones. *)
  for i = 1 to 5 do
    Fabric.send fab (mk_pkt ~id:i ~qos:3 50_000)
  done;
  ignore
    (Sim.Loop.at loop (T.us 2) (fun () ->
         Fabric.send fab (mk_pkt ~id:100 ~qos:0 1000)));
  Sim.Loop.run loop;
  let order = List.rev !order in
  let pos_hi = ref (-1) in
  List.iteri (fun i id -> if id = 100 then pos_hi := i) order;
  check_bool "high priority overtakes" true (!pos_hi >= 0 && !pos_hi < 4)

let test_fabric_drop_overflow () =
  let loop = Sim.Loop.create () in
  let config = { Fabric.default_config with Fabric.egress_buffer_bytes = 20_000 } in
  let fab = Fabric.create ~loop ~config ~hosts:2 in
  let n = ref 0 in
  Fabric.attach fab ~addr:1 ~rx:(fun _ -> incr n);
  Fabric.attach fab ~addr:0 ~rx:(fun _ -> ());
  for i = 0 to 9 do
    Fabric.send fab (mk_pkt ~id:i 10_000)
  done;
  Sim.Loop.run loop;
  check_bool "some dropped" true (Fabric.dropped fab > 0);
  check_int "conservation" 10 (!n + Fabric.dropped fab)

let mk_host ?(hosts = 2) ?(nic_cfg = Nic.default_config) () =
  let loop = Sim.Loop.create () in
  let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts in
  let mks addr =
    let m =
      Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default
        ~name:(Printf.sprintf "m%d" addr) ~cores:4
    in
    let nic = Nic.create ~loop ~machine:m ~fabric:fab ~addr nic_cfg in
    (m, nic)
  in
  (loop, fab, List.init hosts mks)

let test_nic_end_to_end () =
  let loop, _fab, hosts = mk_host () in
  let _, nic0 = List.nth hosts 0 in
  let _, nic1 = List.nth hosts 1 in
  check_bool "tx accepted" true (Nic.try_transmit nic0 (mk_pkt 1000));
  Sim.Loop.run loop;
  check_int "tx count" 1 (Nic.tx_count nic0);
  check_int "rx count" 1 (Nic.rx_count nic1);
  let ring = Nic.rx_ring nic1 ~queue:0 in
  check_int "packet in ring 0" 1 (Squeue.Spsc.length ring)

let test_nic_steering () =
  let loop, _fab, hosts = mk_host () in
  let _, nic0 = List.nth hosts 0 in
  let _, nic1 = List.nth hosts 1 in
  for flow = 0 to 7 do
    ignore (Nic.try_transmit nic0 (mk_pkt ~flow ~id:flow 500))
  done;
  Sim.Loop.run loop;
  for q = 0 to 7 do
    check_int
      (Printf.sprintf "queue %d got its flow" q)
      1
      (Squeue.Spsc.length (Nic.rx_ring nic1 ~queue:q))
  done

let test_nic_custom_steering () =
  let loop, _fab, hosts = mk_host () in
  let _, nic0 = List.nth hosts 0 in
  let _, nic1 = List.nth hosts 1 in
  Nic.install_steering nic1 (fun _ -> 3);
  for flow = 0 to 7 do
    ignore (Nic.try_transmit nic0 (mk_pkt ~flow ~id:flow 500))
  done;
  Sim.Loop.run loop;
  check_int "all in queue 3" 8 (Squeue.Spsc.length (Nic.rx_ring nic1 ~queue:3))

let test_nic_kick_notify () =
  let loop, _fab, hosts = mk_host () in
  let m1, nic1 = List.nth hosts 1 in
  let _, nic0 = List.nth hosts 0 in
  let seen = ref 0 in
  let core = Cpu.Sched.reserve_core m1 in
  let task =
    Cpu.Sched.spawn m1 ~name:"poller" ~account:"snap"
      ~klass:(Cpu.Sched.Pinned core) ~idle:Cpu.Sched.Spin ~step:(fun () ->
        match Squeue.Spsc.pop (Nic.rx_ring nic1 ~queue:0) with
        | Some _ ->
            incr seen;
            Cpu.Sched.Ran (T.ns 200)
        | None -> Cpu.Sched.Idle)
  in
  Cpu.Sched.start task;
  Nic.set_rx_notify nic1 ~queue:0 (Nic.Kick task);
  ignore (Nic.try_transmit nic0 (mk_pkt 500));
  Sim.Loop.run ~until:(T.ms 1) loop;
  check_int "polled packet" 1 !seen

let test_nic_interrupt_notify_and_rearm () =
  let loop, _fab, hosts = mk_host () in
  let _, nic1 = List.nth hosts 1 in
  let _, nic0 = List.nth hosts 0 in
  let irqs = ref 0 in
  Nic.set_rx_notify nic1 ~queue:0 (Nic.Interrupt (fun () -> incr irqs));
  ignore (Nic.try_transmit nic0 (mk_pkt 500));
  Sim.Loop.run loop;
  check_int "one interrupt" 1 !irqs;
  (* While disarmed, more packets do not interrupt. *)
  ignore (Nic.try_transmit nic0 (mk_pkt 500));
  Sim.Loop.run loop;
  check_int "coalesced" 1 !irqs;
  (* Re-arming with a non-empty ring fires immediately. *)
  Nic.rearm_rx_interrupt nic1 ~queue:0;
  Sim.Loop.run loop;
  check_int "rearm fires" 2 !irqs

let test_nic_tx_ring_full () =
  let cfg = { Nic.default_config with Nic.tx_ring_slots = 4 } in
  let loop, _fab, hosts = mk_host ~nic_cfg:cfg () in
  let _, nic0 = List.nth hosts 0 in
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Nic.try_transmit nic0 (mk_pkt 1000) then incr accepted
  done;
  check_int "ring bounded" 4 !accepted;
  check_int "slots free" 0 (Nic.tx_slots_free nic0);
  Sim.Loop.run loop;
  check_int "slots recovered" 4 (Nic.tx_slots_free nic0)

let test_nic_tx_drain_hook () =
  let loop, _fab, hosts = mk_host () in
  let _, nic0 = List.nth hosts 0 in
  let drains = ref 0 in
  Nic.set_tx_drain_hook nic0 (fun () -> incr drains);
  ignore (Nic.try_transmit nic0 (mk_pkt 1000));
  ignore (Nic.try_transmit nic0 (mk_pkt 1000));
  Sim.Loop.run loop;
  check_int "hook per packet" 2 !drains

let test_nic_mtu_enforced () =
  let loop, _fab, hosts = mk_host () in
  ignore loop;
  let _, nic0 = List.nth hosts 0 in
  Alcotest.check_raises "oversize rejected"
    (Invalid_argument "Nic.try_transmit: packet exceeds MTU") (fun () ->
      ignore (Nic.try_transmit nic0 (mk_pkt 9000)))

let test_copy_engine () =
  let loop = Sim.Loop.create () in
  let ce = Nic.Copy_engine.create ~loop ~bandwidth_gbps:80.0 () in
  let done_at = ref [] in
  Nic.Copy_engine.submit ce ~bytes:10_000 ~on_complete:(fun () ->
      done_at := Sim.Loop.now loop :: !done_at);
  Nic.Copy_engine.submit ce ~bytes:10_000 ~on_complete:(fun () ->
      done_at := Sim.Loop.now loop :: !done_at);
  check_int "in flight" 2 (Nic.Copy_engine.in_flight ce);
  Sim.Loop.run loop;
  (match List.rev !done_at with
  | [ a; b ] ->
      (* 10 kB at 80 Gbps = 1000 ns each, serialized. *)
      check_int "first" 1000 a;
      check_int "second" 2000 b
  | _ -> Alcotest.fail "expected two completions");
  check_int "completed" 2 (Nic.Copy_engine.completed ce)

let () =
  Alcotest.run "net"
    [
      ( "fabric",
        [
          Alcotest.test_case "delivery latency" `Quick test_fabric_delivery_latency;
          Alcotest.test_case "queueing" `Quick test_fabric_queueing;
          Alcotest.test_case "qos priority" `Quick test_fabric_qos_priority;
          Alcotest.test_case "drop overflow" `Quick test_fabric_drop_overflow;
        ] );
      ( "nic",
        [
          Alcotest.test_case "end to end" `Quick test_nic_end_to_end;
          Alcotest.test_case "steering" `Quick test_nic_steering;
          Alcotest.test_case "custom steering" `Quick test_nic_custom_steering;
          Alcotest.test_case "kick notify" `Quick test_nic_kick_notify;
          Alcotest.test_case "interrupt rearm" `Quick test_nic_interrupt_notify_and_rearm;
          Alcotest.test_case "tx ring full" `Quick test_nic_tx_ring_full;
          Alcotest.test_case "tx drain hook" `Quick test_nic_tx_drain_hook;
          Alcotest.test_case "mtu" `Quick test_nic_mtu_enforced;
        ] );
      ("copy engine", [ Alcotest.test_case "serialized copies" `Quick test_copy_engine ]);
    ]
