(* Tests for packets, pools, and shared memory regions. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_packet_make () =
  let gen = Memory.Packet.Id_gen.create () in
  let p =
    Memory.Packet.make
      ~id:(Memory.Packet.Id_gen.next gen)
      ~src:1 ~dst:2 ~wire_bytes:1500 ~payload_bytes:1400 Memory.Packet.Empty ()
  in
  check_int "id" 0 p.Memory.Packet.id;
  check_int "wire" 1500 p.Memory.Packet.wire_bytes;
  check_int "ids increment" 1 (Memory.Packet.Id_gen.next gen)

let test_packet_invalid () =
  Alcotest.check_raises "zero bytes rejected"
    (Invalid_argument "Packet.make: wire_bytes") (fun () ->
      ignore
        (Memory.Packet.make ~id:0 ~src:0 ~dst:1 ~wire_bytes:0
           Memory.Packet.Empty ()))

let test_pool_accounting () =
  let p = Memory.Pool.create ~name:"pkt" ~capacity_bytes:10_000 in
  let a = Memory.Pool.alloc p ~owner:"app1" ~bytes:4_000 in
  let b = Memory.Pool.alloc p ~owner:"app2" ~bytes:3_000 in
  check_int "in use" 7_000 (Memory.Pool.in_use p);
  check_int "app1" 4_000 (Memory.Pool.owner_usage p "app1");
  check_int "app2" 3_000 (Memory.Pool.owner_usage p "app2");
  Memory.Pool.free a;
  check_int "after free" 3_000 (Memory.Pool.in_use p);
  check_int "app1 after free" 0 (Memory.Pool.owner_usage p "app1");
  Memory.Pool.free b;
  check_int "empty" 0 (Memory.Pool.in_use p);
  check_int "watermark" 7_000 (Memory.Pool.high_watermark p)

let test_pool_exhaustion () =
  let p = Memory.Pool.create ~name:"pkt" ~capacity_bytes:1_000 in
  let _keep = Memory.Pool.alloc p ~owner:"a" ~bytes:900 in
  check_bool "try_alloc fails" true
    (Memory.Pool.try_alloc p ~owner:"a" ~bytes:200 = None);
  Alcotest.check_raises "alloc raises" (Memory.Pool.Exhausted "pkt") (fun () ->
      ignore (Memory.Pool.alloc p ~owner:"a" ~bytes:200))

let test_pool_double_free () =
  let p = Memory.Pool.create ~name:"pkt" ~capacity_bytes:1_000 in
  let a = Memory.Pool.alloc p ~owner:"a" ~bytes:100 in
  Memory.Pool.free a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Pool.free: double free") (fun () -> Memory.Pool.free a)

let pool_prop_balance =
  QCheck.Test.make ~name:"pool usage returns to zero after freeing all"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 100))
    (fun sizes ->
      let p = Memory.Pool.create ~name:"p" ~capacity_bytes:1_000_000 in
      let allocs =
        List.map (fun b -> Memory.Pool.alloc p ~owner:"x" ~bytes:b) sizes
      in
      List.iter Memory.Pool.free allocs;
      Memory.Pool.in_use p = 0 && Memory.Pool.owner_usage p "x" = 0)

let test_region_backed_rw () =
  let r = Memory.Region.create ~id:1 ~size:4096 ~owner:"app" () in
  check_bool "backed" true (Memory.Region.is_backed r);
  Memory.Region.write r ~off:100 (Bytes.of_string "hello");
  Alcotest.(check string)
    "read back" "hello"
    (Bytes.to_string (Memory.Region.read r ~off:100 ~len:5));
  Memory.Region.write_int64 r 200 0x1122334455667788L;
  Alcotest.(check int64)
    "int64 roundtrip" 0x1122334455667788L
    (Memory.Region.read_int64 r 200)

let test_region_unbacked () =
  let r = Memory.Region.create ~backed:false ~id:2 ~size:1_000_000 ~owner:"app" () in
  check_bool "unbacked" false (Memory.Region.is_backed r);
  (* Synthetic contents are deterministic. *)
  let a = Memory.Region.read r ~off:500 ~len:16 in
  let b = Memory.Region.read r ~off:500 ~len:16 in
  check_bool "deterministic" true (Bytes.equal a b);
  (* Writes are ignored without error. *)
  Memory.Region.write r ~off:500 (Bytes.of_string "xy")

let test_region_bounds () =
  let r = Memory.Region.create ~id:3 ~size:128 ~owner:"app" () in
  Alcotest.check_raises "oob read" (Invalid_argument "Region: out of range access")
    (fun () -> ignore (Memory.Region.read r ~off:120 ~len:16));
  Alcotest.check_raises "oob write" (Invalid_argument "Region: out of range access")
    (fun () -> Memory.Region.write r ~off:(-1) (Bytes.of_string "x"))

let test_region_nic_registration () =
  let r = Memory.Region.create ~id:4 ~size:64 ~owner:"app" () in
  check_bool "initially unregistered" false (Memory.Region.nic_registered r);
  Memory.Region.register_for_nic r;
  Memory.Region.register_for_nic r;
  check_bool "registered" true (Memory.Region.nic_registered r)

let () =
  Alcotest.run "memory"
    [
      ( "packet",
        [
          Alcotest.test_case "make" `Quick test_packet_make;
          Alcotest.test_case "invalid" `Quick test_packet_invalid;
        ] );
      ( "pool",
        [
          Alcotest.test_case "accounting" `Quick test_pool_accounting;
          Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
          Alcotest.test_case "double free" `Quick test_pool_double_free;
          QCheck_alcotest.to_alcotest pool_prop_balance;
        ] );
      ( "region",
        [
          Alcotest.test_case "backed rw" `Quick test_region_backed_rw;
          Alcotest.test_case "unbacked" `Quick test_region_unbacked;
          Alcotest.test_case "bounds" `Quick test_region_bounds;
          Alcotest.test_case "nic registration" `Quick test_region_nic_registration;
        ] );
    ]
