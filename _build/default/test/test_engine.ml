(* Tests for the Snap engine framework: groups, scheduling modes,
   mailboxes, and Click-style elements. *)

module T = Sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(cores = 6) () =
  let loop = Sim.Loop.create () in
  let m =
    Cpu.Sched.create_machine ~loop ~costs:Sim.Costs.default ~name:"m" ~cores
  in
  (loop, m)

(* A simple engine fed by an SPSC queue: each item costs [item_cost]. *)
let queue_engine ~loop ~name ?(item_cost = T.us 1) ?(batch = 16) () =
  let q = Squeue.Spsc.create ~name ~capacity:4096 () in
  let processed = ref 0 in
  let run () =
    let n = ref 0 in
    while
      !n < batch && Option.is_some (Squeue.Spsc.pop q)
    do
      incr n;
      incr processed
    done;
    if !n = 0 then Engine.No_work else Engine.Worked (!n * item_cost)
  in
  let queue_delay now = Squeue.Spsc.oldest_age q ~now in
  let e = Engine.create ~name ~run ~queue_delay () in
  let feed v =
    ignore (Squeue.Spsc.push q ~now:(Sim.Loop.now loop) v);
    Engine.notify e
  in
  (e, feed, processed)

let test_dedicated_processes_work () =
  let loop, m = mk () in
  let g =
    Engine.create_group ~machine:m ~name:"g"
      ~mode:(Engine.Dedicating { cores = 1 })
  in
  let e, feed, processed = queue_engine ~loop ~name:"e0" () in
  Engine.add g e;
  ignore
    (Sim.Loop.at loop (T.ms 1) (fun () ->
         for i = 1 to 100 do
           feed i
         done));
  Sim.Loop.run ~until:(T.ms 2) loop;
  check_int "all processed" 100 !processed;
  check_bool "engine made progress" true (Engine.steps e > 0);
  (* A dedicated core spins: the snap account burns ~the whole time. *)
  check_bool "core burned" true (Cpu.Sched.account_busy_ns m "snap" > T.ms 1)

let test_dedicated_fair_share () =
  (* Two engines on one dedicated core must both make progress. *)
  let loop, m = mk () in
  let g =
    Engine.create_group ~machine:m ~name:"g"
      ~mode:(Engine.Dedicating { cores = 1 })
  in
  let e1, feed1, p1 = queue_engine ~loop ~name:"e1" () in
  let e2, feed2, p2 = queue_engine ~loop ~name:"e2" () in
  Engine.add g e1;
  Engine.add g e2;
  for i = 1 to 500 do
    feed1 i;
    feed2 i
  done;
  Sim.Loop.run ~until:(T.ms 2) loop;
  check_int "e1 done" 500 !p1;
  check_int "e2 done" 500 !p2

let test_spreading_blocks_when_idle () =
  let loop, m = mk () in
  let g =
    Engine.create_group ~machine:m ~name:"g"
      ~mode:(Engine.Spreading { runtime_pct = 0.9 })
  in
  let e, feed, processed = queue_engine ~loop ~name:"e0" () in
  Engine.add g e;
  (* Let it go idle, measure CPU over a quiet window: must be ~zero
     (blocked, not spinning). *)
  Sim.Loop.run ~until:(T.ms 5) loop;
  let busy_before = Cpu.Sched.account_busy_ns m "snap" in
  Sim.Loop.run ~until:(T.ms 15) loop;
  let busy_quiet = Cpu.Sched.account_busy_ns m "snap" - busy_before in
  check_bool "blocked engine burns nothing" true (busy_quiet < T.us 50);
  (* Now feed and check wakeup. *)
  let woke = ref 0 in
  ignore
    (Sim.Loop.at loop (T.ms 20) (fun () ->
         feed 1;
         woke := 1));
  Sim.Loop.run ~until:(T.ms 21) loop;
  check_int "processed after wake" 1 !processed

let test_spreading_one_thread_per_engine () =
  let loop, m = mk () in
  ignore loop;
  let g =
    Engine.create_group ~machine:m ~name:"g"
      ~mode:(Engine.Spreading { runtime_pct = 0.9 })
  in
  let e1, _, _ = queue_engine ~loop ~name:"e1" () in
  let e2, _, _ = queue_engine ~loop ~name:"e2" () in
  Engine.add g e1;
  Engine.add g e2;
  match (Engine.owner_task e1, Engine.owner_task e2) with
  | Some t1, Some t2 -> check_bool "distinct threads" true (not (t1 == t2))
  | _ -> Alcotest.fail "engines not attached"

let test_compacting_scales_out_and_back () =
  let loop, m = mk () in
  let g =
    Engine.create_group ~machine:m ~name:"g"
      ~mode:(Engine.Compacting { slo = T.us 20; max_threads = 4 })
  in
  (* Two heavy engines: each item costs 20us, so one thread cannot hold
     the SLO for both. *)
  let e1, feed1, p1 = queue_engine ~loop ~name:"e1" ~item_cost:(T.us 20) ~batch:1 () in
  let e2, feed2, p2 = queue_engine ~loop ~name:"e2" ~item_cost:(T.us 20) ~batch:1 () in
  Engine.add g e1;
  Engine.add g e2;
  check_int "starts compacted" 1 (Engine.active_threads g);
  (* Offered load: 2 x one item per 30us = ~1.3 cores of work. *)
  let stop_feeding = ref false in
  let rec feeder i =
    if not !stop_feeding then begin
      feed1 i;
      feed2 i;
      ignore (Sim.Loop.after loop (T.us 30) (fun () -> feeder (i + 1)))
    end
  in
  feeder 0;
  Sim.Loop.run ~until:(T.ms 5) loop;
  check_int "scaled out under load" 2 (Engine.active_threads g);
  check_bool "both progressing" true (!p1 > 50 && !p2 > 50);
  (* Stop the load; the group must compact back to one thread. *)
  stop_feeding := true;
  Sim.Loop.run ~until:(T.ms 10) loop;
  check_int "compacted when idle" 1 (Engine.active_threads g)

let test_mailbox_runs_on_engine_thread () =
  let loop, m = mk () in
  let g =
    Engine.create_group ~machine:m ~name:"g"
      ~mode:(Engine.Dedicating { cores = 1 })
  in
  let e, feed, _ = queue_engine ~loop ~name:"e0" () in
  Engine.add g e;
  let ran_at = ref (-1) in
  ignore
    (Sim.Loop.at loop (T.ms 1) (fun () ->
         check_bool "posted" true
           (Squeue.Mailbox.post (Engine.mailbox e) (fun () ->
                ran_at := Sim.Loop.now loop));
         feed 1));
  Sim.Loop.run ~until:(T.ms 2) loop;
  check_bool "mailbox work executed" true (!ran_at >= T.ms 1)

let test_remove_detaches () =
  let loop, m = mk () in
  let g =
    Engine.create_group ~machine:m ~name:"g"
      ~mode:(Engine.Dedicating { cores = 1 })
  in
  let e, feed, processed = queue_engine ~loop ~name:"e0" () in
  Engine.add g e;
  Sim.Loop.run ~until:(T.ms 1) loop;
  Engine.remove g e;
  check_bool "detached" false (Engine.is_attached e);
  feed 1;
  Sim.Loop.run ~until:(T.ms 2) loop;
  check_int "no processing after detach" 0 !processed

(* -- Elements ----------------------------------------------------------- *)

let pkt ?(bytes = 1000) ?(dst = 1) id =
  Memory.Packet.make ~id ~src:0 ~dst ~wire_bytes:bytes Memory.Packet.Empty ()

let test_element_acl () =
  let el = Engine.Element.acl ~name:"acl" ~allow:(fun p -> p.Memory.Packet.dst = 1) in
  let pipe = Engine.Element.Pipeline.of_list [ el ] in
  let kept, _ = Engine.Element.Pipeline.push pipe (pkt ~dst:1 0) in
  let dropped, _ = Engine.Element.Pipeline.push pipe (pkt ~dst:2 1) in
  check_bool "allowed" true (Option.is_some kept);
  check_bool "denied" true (Option.is_none dropped);
  check_int "drop counted" 1 (Engine.Element.drops el);
  check_int "both counted in" 2 (Engine.Element.packets_in el)

let test_element_token_bucket () =
  let loop = Sim.Loop.create () in
  (* 8 Gbps = 1 byte/ns; burst 10 kB. *)
  let el =
    Engine.Element.token_bucket ~name:"tb" ~loop ~rate_gbps:8.0
      ~burst_bytes:10_000
  in
  let pipe = Engine.Element.Pipeline.of_list [ el ] in
  (* Burst: the first 10 packets of 1000B pass, the 11th drops. *)
  let passed = ref 0 in
  for i = 0 to 11 do
    match Engine.Element.Pipeline.push pipe (pkt i) with
    | Some _, _ -> incr passed
    | None, _ -> ()
  done;
  check_int "burst allowed" 10 !passed;
  (* After 5us, 5000 tokens refill: 5 more pass. *)
  ignore
    (Sim.Loop.at loop (T.us 5) (fun () ->
         let extra = ref 0 in
         for i = 20 to 30 do
           match Engine.Element.Pipeline.push pipe (pkt i) with
           | Some _, _ -> incr extra
           | None, _ -> ()
         done;
         check_int "refill allows 5" 5 !extra));
  Sim.Loop.run loop

let test_element_rewrite_and_pipeline_cost () =
  let table = function 1 -> Some 7 | _ -> None in
  let el = Engine.Element.rewrite_dst ~name:"vip" ~table in
  let counter = Engine.Element.counter ~name:"cnt" in
  let pipe = Engine.Element.Pipeline.of_list [ counter; el ] in
  (match Engine.Element.Pipeline.push pipe (pkt ~dst:1 0) with
  | Some p, cost ->
      check_int "rewritten" 7 p.Memory.Packet.dst;
      check_bool "cost accumulated" true (cost >= T.ns 75)
  | None, _ -> Alcotest.fail "expected packet to pass");
  match Engine.Element.Pipeline.push pipe (pkt ~dst:9 1) with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "unroutable must drop"

let () =
  Alcotest.run "engine"
    [
      ( "modes",
        [
          Alcotest.test_case "dedicated" `Quick test_dedicated_processes_work;
          Alcotest.test_case "dedicated fair share" `Quick test_dedicated_fair_share;
          Alcotest.test_case "spreading blocks" `Quick test_spreading_blocks_when_idle;
          Alcotest.test_case "spreading 1:1 threads" `Quick test_spreading_one_thread_per_engine;
          Alcotest.test_case "compacting scale out/in" `Quick test_compacting_scales_out_and_back;
        ] );
      ( "control",
        [
          Alcotest.test_case "mailbox on engine thread" `Quick test_mailbox_runs_on_engine_thread;
          Alcotest.test_case "remove detaches" `Quick test_remove_detaches;
        ] );
      ( "elements",
        [
          Alcotest.test_case "acl" `Quick test_element_acl;
          Alcotest.test_case "token bucket" `Quick test_element_token_bucket;
          Alcotest.test_case "rewrite + cost" `Quick test_element_rewrite_and_pipeline_cost;
        ] );
    ]
