(* snapsim: command-line driver for the Snap reproduction experiments.

   Exposes each workload with its interesting knobs; the bench harness
   (bench/main.exe) runs the fixed paper configurations, while this tool
   is for exploration:

     snapsim table1 --streams 200 --mtu 5000 --ioat
     snapsim rr --system pony-spin
     snapsim a2a --transport pony-compacting --load 48 --hosts 8
     snapsim prober --system tcp --mmap 8
     snapsim analytics --clients 8 --batch 8
     snapsim upgrade --machines 10 *)

open Cmdliner
module T = Sim.Time

let pf fmt = Printf.printf fmt

(* -- table1 ----------------------------------------------------------- *)

let table1_cmd =
  let run tcp streams mtu ioat =
    let r =
      if tcp then Workloads.Streaming.run_tcp ~streams ~mtu ()
      else Workloads.Streaming.run_pony ~streams ~mtu ~use_copy_engine:ioat ()
    in
    pf "%s streams=%d mtu=%d%s: %.1f Gbps, cpu tx=%.2f rx=%.2f avg=%.2f\n"
      (if tcp then "TCP" else "Snap/Pony")
      streams mtu
      (if ioat then "+I/OAT" else "")
      r.Workloads.Streaming.gbps r.sender_cpu r.receiver_cpu r.cpu
  in
  let tcp = Arg.(value & flag & info [ "tcp" ] ~doc:"Use the kernel TCP baseline.") in
  let streams =
    Arg.(value & opt int 1 & info [ "streams" ] ~doc:"Simultaneous streams.")
  in
  let mtu = Arg.(value & opt int 4096 & info [ "mtu" ] ~doc:"MTU in bytes.") in
  let ioat = Arg.(value & flag & info [ "ioat" ] ~doc:"Enable the copy engine.") in
  Cmd.v
    (Cmd.info "table1" ~doc:"Two-machine streaming throughput (Table 1).")
    Term.(const run $ tcp $ streams $ mtu $ ioat)

(* -- rr ---------------------------------------------------------------- *)

let rr_cmd =
  let run system =
    let sys =
      match system with
      | "tcp" -> Workloads.Rr.Tcp_rr { busy_poll = false }
      | "tcp-busypoll" -> Workloads.Rr.Tcp_rr { busy_poll = true }
      | "pony" -> Workloads.Rr.Pony_rr { app_spin = false }
      | "pony-spin" -> Workloads.Rr.Pony_rr { app_spin = true }
      | "pony-onesided" -> Workloads.Rr.Pony_one_sided
      | s -> failwith ("unknown system " ^ s)
    in
    pf "%s mean RTT: %.1f us\n" system (T.to_float_us (Workloads.Rr.mean_rtt sys))
  in
  let system =
    Arg.(
      value
      & opt string "pony-spin"
      & info [ "system" ]
          ~doc:
            "One of tcp, tcp-busypoll, pony, pony-spin, pony-onesided.")
  in
  Cmd.v
    (Cmd.info "rr" ~doc:"Small-op round-trip latency (Figure 6(a)).")
    Term.(const run $ system)

(* -- a2a ---------------------------------------------------------------- *)

let a2a_cmd =
  let run transport load hosts jobs antagonists =
    let t =
      match transport with
      | "tcp" -> Workloads.All_to_all.Tcp
      | "pony-spreading" ->
          Workloads.All_to_all.Pony (Engine.Spreading { runtime_pct = 1.0 })
      | "pony-compacting" ->
          Workloads.All_to_all.Pony
            (Engine.Compacting { slo = T.us 25; max_threads = 10 })
      | "pony-cfs" ->
          Workloads.All_to_all.Pony
            (Engine.Spreading_class (Cpu.Sched.Cfs { nice = -20 }))
      | s -> failwith ("unknown transport " ^ s)
    in
    let cfg =
      {
        Workloads.All_to_all.default_config with
        Workloads.All_to_all.offered_gbps_per_host = load;
        hosts;
        jobs_per_host = jobs;
        antagonist =
          (if antagonists > 0 then Workloads.All_to_all.Md5 antagonists
           else Workloads.All_to_all.No_antagonist);
      }
    in
    let r = Workloads.All_to_all.run t cfg in
    pf "%s at %.0f Gbps/host: cpu=%.2f cores, achieved=%.1f Gbps, prober p50=%.0fus p99=%.0fus (%d RPCs)\n"
      transport load r.Workloads.All_to_all.cpu_cores r.achieved_gbps
      (T.to_float_us (Stats.Histogram.percentile r.prober 50.))
      (T.to_float_us (Stats.Histogram.percentile r.prober 99.))
      r.rpcs
  in
  let transport =
    Arg.(
      value
      & opt string "pony-spreading"
      & info [ "transport" ]
          ~doc:"tcp | pony-spreading | pony-compacting | pony-cfs.")
  in
  let load =
    Arg.(value & opt float 8.0 & info [ "load" ] ~doc:"Offered Gbps per host.")
  in
  let hosts = Arg.(value & opt int 8 & info [ "hosts" ] ~doc:"Rack size.") in
  let jobs = Arg.(value & opt int 10 & info [ "jobs" ] ~doc:"Jobs per host.") in
  let antag =
    Arg.(value & opt int 0 & info [ "md5" ] ~doc:"MD5 antagonist threads per host.")
  in
  Cmd.v
    (Cmd.info "a2a" ~doc:"All-to-all 1MB RPC rack workload (Figures 6(b)-(d)).")
    Term.(const run $ transport $ load $ hosts $ jobs $ antag)

(* -- prober ------------------------------------------------------------- *)

let prober_cmd =
  let run system mmap =
    let sys =
      match system with
      | "tcp" -> Workloads.Rr.Prober_tcp
      | "spreading" ->
          Workloads.Rr.Prober_pony (Engine.Spreading { runtime_pct = 1.0 })
      | "compacting" ->
          Workloads.Rr.Prober_pony
            (Engine.Compacting { slo = T.us 25; max_threads = 4 })
      | s -> failwith ("unknown system " ^ s)
    in
    let interference =
      if mmap > 0 then Workloads.Rr.Mmap_antagonist mmap else Workloads.Rr.Idle
    in
    let h = Workloads.Rr.prober ~interference sys in
    pf "%s%s: p50=%.1fus p99=%.1fus p99.9=%.1fus (%d probes)\n" system
      (if mmap > 0 then Printf.sprintf " +mmap(%d)" mmap else " idle")
      (T.to_float_us (Stats.Histogram.percentile h 50.))
      (T.to_float_us (Stats.Histogram.percentile h 99.))
      (T.to_float_us (Stats.Histogram.percentile h 99.9))
      (Stats.Histogram.count h)
  in
  let system =
    Arg.(value & opt string "compacting"
         & info [ "system" ] ~doc:"tcp | spreading | compacting.")
  in
  let mmap =
    Arg.(value & opt int 0 & info [ "mmap" ] ~doc:"mmap antagonist threads.")
  in
  Cmd.v
    (Cmd.info "prober" ~doc:"Low-QPS latency prober (Figures 7(a)/(b)).")
    Term.(const run $ system $ mmap)

(* -- analytics ------------------------------------------------------------ *)

let analytics_cmd =
  let run clients batch outstanding =
    let r = Workloads.Analytics.run ~clients ~batch ~outstanding () in
    pf "analytics: mean=%.2fM IOPS peak=%.2fM IOPS on %.2f engine cores\n"
      (r.Workloads.Analytics.mean_iops /. 1e6)
      (r.peak_iops /. 1e6) r.server_engine_cores
  in
  let clients = Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client hosts.") in
  let batch = Arg.(value & opt int 8 & info [ "batch" ] ~doc:"Indirections per op.") in
  let outstanding =
    Arg.(value & opt int 32 & info [ "outstanding" ] ~doc:"Ops in flight per client.")
  in
  Cmd.v
    (Cmd.info "analytics" ~doc:"One-sided batched-indirect-read service (Figure 8).")
    Term.(const run $ clients $ batch $ outstanding)

(* -- upgrade ---------------------------------------------------------------- *)

let upgrade_cmd =
  let run machines engines median_mb =
    let r =
      Workloads.Upgrade_fleet.run ~machines ~engines_per_machine:engines
        ~state_median_mb:median_mb ()
    in
    pf "upgrade: %d engines migrated, blackout p50=%.0fms p90=%.0fms p99=%.0fms; %d messages flowed during\n"
      r.Workloads.Upgrade_fleet.engines_migrated
      (T.to_float_ms r.median)
      (T.to_float_ms (Stats.Histogram.percentile r.blackouts 90.))
      (T.to_float_ms (Stats.Histogram.percentile r.blackouts 99.))
      r.messages_delivered_during
  in
  let machines = Arg.(value & opt int 10 & info [ "machines" ] ~doc:"Cell size (even).") in
  let engines = Arg.(value & opt int 4 & info [ "engines" ] ~doc:"Engines per machine.") in
  let median =
    Arg.(value & opt float 270.0 & info [ "state-mb" ] ~doc:"Median engine state, MB.")
  in
  Cmd.v
    (Cmd.info "upgrade" ~doc:"Transparent-upgrade blackout distribution (Figure 9).")
    Term.(const run $ machines $ engines $ median)

let () =
  let doc = "Snap (SOSP'19) reproduction: simulated-host experiments." in
  let info = Cmd.info "snapsim" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ table1_cmd; rr_cmd; a2a_cmd; prober_cmd; analytics_cmd; upgrade_cmd ]))
