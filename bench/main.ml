(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 5), plus ablations and Bechamel microbenchmarks of
   the hot data structures.

   Usage: main.exe [SECTION...|all] [--only SECTION[,SECTION...]]
                   [--metrics-out FILE.json] [--trace-out FILE.json]
                   [--slow-ops-out FILE.json] [--bench-out FILE.json]
                   [--check]

   `--help` lists the sections; the single source of truth is the
   [all_benches] table in the driver at the bottom of this file.
   Section names (positional or via --only) may be comma-separated.

   --metrics-out dumps the full Stats.Registry (every counter, gauge,
   histogram and series the selected sections touched) as JSON.
   --trace-out turns on Sim.Span capture for the run and writes the
   result as Chrome trace-event JSON (chrome://tracing, perfetto);
   with op attribution on, cross-host flow arrows link each op's
   tx-side and rx-side spans.
   --slow-ops-out turns on Sim.Optrace capture and writes the top-K
   slowest ops with their full stage timelines as JSON (grouped per
   section for the attribution-enabled sections below).
   --bench-out writes BENCH_8.json-style normalized perf rows for the
   fault/overload/tenancy sections (the repo's perf trajectory; see
   tools/bench_gate.py for the regression gate).
   --check enables the Check.Invariant registry for every workload run;
   the sweep section (invariants + schedule perturbation across seeds,
   tie-break salts and randomized hashing) enables it regardless and is
   excluded from `all`.

   Absolute numbers come from a calibrated cost model (lib/sim/costs.ml);
   the claim checked here is the paper's shape: who wins, by what factor,
   and where the crossovers fall.  Paper values quoted inline. *)

module T = Sim.Time
module A = Workloads.All_to_all

let section name = Printf.printf "\n=== %s ===\n%!" name

let spreading = Engine.Spreading { runtime_pct = 1.0 }
let compacting = Engine.Compacting { slo = T.us 25; max_threads = 10 }

(* -- Table 1 ------------------------------------------------------------ *)

let table1 () =
  section "Table 1: single-thread streaming throughput (paper values in [])";
  Printf.printf "%-26s %8s %12s %10s\n" "system" "streams" "CPU/sec" "Gbps";
  let row name paper_cpu paper_gbps (r : Workloads.Streaming.result) =
    Printf.printf "%-26s %8d %6.2f [%s] %6.1f [%s]\n%!" name
      r.Workloads.Streaming.streams r.cpu paper_cpu r.gbps paper_gbps
  in
  let window = T.ms 25 in
  row "Linux TCP" "1.17" "22.0" (Workloads.Streaming.run_tcp ~window ());
  row "Linux TCP" "1.15" "12.4" (Workloads.Streaming.run_tcp ~window ~streams:200 ());
  row "Snap/Pony" "1.05" "38.5" (Workloads.Streaming.run_pony ~window ());
  row "Snap/Pony" "1.05" "39.1" (Workloads.Streaming.run_pony ~window ~streams:200 ());
  row "Snap/Pony 5k MTU" "1.05" "67.5" (Workloads.Streaming.run_pony ~window ~mtu:5000 ());
  row "Snap/Pony 5k MTU" "1.05" "65.7"
    (Workloads.Streaming.run_pony ~window ~mtu:5000 ~streams:200 ());
  row "Snap/Pony 5k+I/OAT" "1.05" "82.2"
    (Workloads.Streaming.run_pony ~window ~mtu:5000 ~use_copy_engine:true ());
  row "Snap/Pony 5k+I/OAT" "1.05" "80.5"
    (Workloads.Streaming.run_pony ~window ~mtu:5000 ~use_copy_engine:true
       ~streams:200 ())

(* -- Figure 6(a) --------------------------------------------------------- *)

let fig6a () =
  section "Figure 6(a): mean small-op round-trip latency (paper values in [])";
  let row name paper v =
    Printf.printf "%-34s %7.1f us  [%s]\n%!" name (T.to_float_us v) paper
  in
  row "TCP_RR" "23" (Workloads.Rr.mean_rtt (Workloads.Rr.Tcp_rr { busy_poll = false }));
  row "TCP_RR busy-poll" "18"
    (Workloads.Rr.mean_rtt (Workloads.Rr.Tcp_rr { busy_poll = true }));
  row "Snap/Pony (app blocks)" "18"
    (Workloads.Rr.mean_rtt (Workloads.Rr.Pony_rr { app_spin = false }));
  row "Snap/Pony (app spins)" "<10"
    (Workloads.Rr.mean_rtt (Workloads.Rr.Pony_rr { app_spin = true }));
  row "Snap/Pony one-sided" "8.8" (Workloads.Rr.mean_rtt Workloads.Rr.Pony_one_sided)

(* -- Figures 6(b)/(c): CPU and tail latency vs offered load --------------- *)

let loads = [ 8.0; 24.0; 48.0; 72.0 ]

let fig6bc () =
  section
    "Figures 6(b)+(c): all-to-all 1MB RPCs - per-host CPU and 99p tiny-RPC \
     latency vs offered load";
  Printf.printf
    "(8 hosts x 10 jobs, 50G NICs; paper: 42 hosts; at 80G Snap is >3x more \
     CPU-efficient than TCP; spreading has the best tail under load)\n";
  Printf.printf "%-10s %18s %18s %18s\n" "load" "TCP" "Snap/spreading"
    "Snap/compacting";
  Printf.printf "%-10s %9s %9s %9s %9s %9s %9s\n" "Gbps/host" "cores" "p99us"
    "cores" "p99us" "cores" "p99us";
  List.iter
    (fun load ->
      let cfg =
        {
          A.default_config with
          A.offered_gbps_per_host = load;
          A.jobs_per_host = 10;
          A.window = T.ms 25;
        }
      in
      let tcp = A.run A.Tcp cfg in
      let spread = A.run (A.Pony spreading) cfg in
      let compact = A.run (A.Pony compacting) cfg in
      let p99 r = T.to_float_us (Stats.Histogram.percentile r.A.prober 99.) in
      Printf.printf "%-10.0f %9.2f %9.0f %9.2f %9.0f %9.2f %9.0f\n%!" load
        tcp.A.cpu_cores (p99 tcp) spread.A.cpu_cores (p99 spread)
        compact.A.cpu_cores (p99 compact))
    loads

(* -- Figure 6(d): antagonists, MicroQuanta vs CFS ------------------------- *)

let fig6d () =
  section
    "Figure 6(d): 99p latency with MD5 antagonists - MicroQuanta vs CFS(-20) \
     spreading engines";
  Printf.printf "%-10s %16s %16s\n" "load" "MicroQuanta" "CFS nice -20";
  Printf.printf "%-10s %16s %16s\n" "Gbps/host" "p99 us" "p99 us";
  List.iter
    (fun load ->
      let base =
        {
          A.default_config with
          A.offered_gbps_per_host = load;
          A.jobs_per_host = 10;
          A.window = T.ms 25;
          A.antagonist = A.Md5 12;
        }
      in
      let mq = A.run (A.Pony spreading) base in
      let cfs =
        A.run (A.Pony (Engine.Spreading_class (Cpu.Sched.Cfs { nice = -20 }))) base
      in
      let p99 r = T.to_float_us (Stats.Histogram.percentile r.A.prober 99.) in
      Printf.printf "%-10.0f %16.0f %16.0f\n%!" load (p99 mq) (p99 cfs))
    [ 8.0; 48.0 ]

(* -- Figures 7(a)/(b) ------------------------------------------------------ *)

let fig7 interference title =
  section title;
  Printf.printf "%-18s %10s %10s %10s\n" "system" "p50 us" "p99 us" "p99.9 us";
  let row name h =
    Printf.printf "%-18s %10.1f %10.1f %10.1f\n%!" name
      (T.to_float_us (Stats.Histogram.percentile h 50.))
      (T.to_float_us (Stats.Histogram.percentile h 99.))
      (T.to_float_us (Stats.Histogram.percentile h 99.9))
  in
  let dur = T.sec 1 in
  row "TCP" (Workloads.Rr.prober ~duration:dur ~interference Workloads.Rr.Prober_tcp);
  row "Snap/spreading"
    (Workloads.Rr.prober ~duration:dur ~interference (Workloads.Rr.Prober_pony spreading));
  row "Snap/compacting"
    (Workloads.Rr.prober ~duration:dur ~interference
       (Workloads.Rr.Prober_pony compacting))

let fig7a () =
  fig7 Workloads.Rr.Idle
    "Figure 7(a): 1000-QPS prober on idle machines (C-state wakeups; \
     compacting spin-polls and avoids them)"

let fig7b () =
  fig7 (Workloads.Rr.Mmap_antagonist 8)
    "Figure 7(b): 1000-QPS prober under mmap antagonist (non-preemptible \
     kernel sections)"

(* -- Figure 8 -------------------------------------------------------------- *)

let fig8 () =
  section
    "Figure 8: one-sided batched-indirect-read service (paper: up to 5M \
     IOPS on one engine core)";
  let r = Workloads.Analytics.run () in
  Printf.printf "server engine cores: %.2f\n" r.Workloads.Analytics.server_engine_cores;
  Printf.printf "mean: %.2f M IOPS   peak: %.2f M IOPS\n" (r.mean_iops /. 1e6)
    (r.peak_iops /. 1e6);
  Printf.printf "%10s  %12s\n" "t (ms)" "IOPS";
  Stats.Series.iter r.iops_series (fun t v ->
      Printf.printf "%10.1f  %12.0f\n" (T.to_float_ms t) v);
  Printf.printf "%!"

(* -- Figure 9 -------------------------------------------------------------- *)

let fig9 () =
  section
    "Figure 9: transparent-upgrade blackout distribution (paper: median \
     250 ms, heavy tail)";
  let r = Workloads.Upgrade_fleet.run () in
  Printf.printf "engines migrated: %d; messages delivered during upgrades: %d\n"
    r.Workloads.Upgrade_fleet.engines_migrated r.messages_delivered_during;
  Printf.printf "blackout: p25=%.0fms p50=%.0fms [250] p75=%.0fms p90=%.0fms p99=%.0fms\n%!"
    (T.to_float_ms (Stats.Histogram.percentile r.blackouts 25.))
    (T.to_float_ms r.median)
    (T.to_float_ms (Stats.Histogram.percentile r.blackouts 75.))
    (T.to_float_ms (Stats.Histogram.percentile r.blackouts 90.))
    (T.to_float_ms (Stats.Histogram.percentile r.blackouts 99.))

(* -- Ablations -------------------------------------------------------------- *)

let ablate_mtu () =
  section "Ablation: MTU sweep for Snap/Pony single-stream throughput";
  List.iter
    (fun mtu ->
      let r = Workloads.Streaming.run_pony ~window:(T.ms 20) ~mtu () in
      Printf.printf "MTU %5d: %6.1f Gbps at %.2f cores\n%!" mtu
        r.Workloads.Streaming.gbps r.cpu)
    [ 1500; 4096; 5000; 9000 ]

let ablate_indirect () =
  section
    "Ablation: batched indirect read vs application-level pointer chase \
     (section 3.2: 'an indirect read effectively doubles the achievable \
     operation rate and halves the latency')";
  (* One logical lookup = resolve a table entry, then read the target.
     Client-side chase: two dependent one-sided reads (2 RTT).  Indirect
     read: one operation. *)
  let run_chase ~indirect =
    let loop = Sim.Loop.create ~seed:3 () in
    let fab = Fabric.create ~loop ~config:Fabric.default_config ~hosts:2 in
    let dir = Pony.Express.Directory.create () in
    let mk addr =
      Snap.Host.create ~loop ~fabric:fab ~directory:dir ~addr
        ~mode:(Engine.Dedicating { cores = 1 }) ()
    in
    let hs = mk 0 and hc = mk 1 in
    let table = Memory.Region.create ~id:1 ~size:65536 ~owner:"srv" () in
    let data = Memory.Region.create ~id:2 ~size:65536 ~owner:"srv" () in
    for i = 0 to (65536 / 8) - 1 do
      Memory.Region.write_int64 table (8 * i) (Int64.of_int (8 * i mod 65000))
    done;
    ignore
      (Snap.Host.spawn_app hs ~name:"srv" (fun ctx ->
           let c = Pony.Express.create_client ctx hs.Snap.Host.pony ~name:"srv" () in
           Pony.Express.register_region ctx c table;
           Pony.Express.register_region ctx c data;
           Cpu.Thread.sleep ctx (T.sec 2)));
    let sum = ref 0 and n = ref 0 in
    ignore
      (Snap.Host.spawn_app hc ~name:"cli" ~spin:true (fun ctx ->
           let c = Pony.Express.create_client ctx hc.Snap.Host.pony ~name:"cli" () in
           Cpu.Thread.sleep ctx (T.us 500);
           let conn = Pony.Express.connect ctx c ~dst_host:0 ~dst_client:0 in
           for i = 1 to 200 do
             let t0 = Cpu.Thread.now ctx in
             if indirect then begin
               ignore
                 (Pony.Express.indirect_read ctx conn ~table_region:1
                    ~data_region:2 ~indices:[ i mod 1000 ] ~len:64);
               ignore (Pony.Express.await_completion ctx c)
             end
             else begin
               ignore
                 (Pony.Express.one_sided_read ctx conn ~region:1
                    ~off:(8 * (i mod 1000)) ~len:8);
               let c1 = Pony.Express.await_completion ctx c in
               let target =
                 match c1.Pony.Express.value with
                 | Some v -> Int64.to_int v
                 | None -> 0
               in
               ignore (Pony.Express.one_sided_read ctx conn ~region:2 ~off:target ~len:64);
               ignore (Pony.Express.await_completion ctx c)
             end;
             sum := !sum + (Cpu.Thread.now ctx - t0);
             incr n
           done));
    Sim.Loop.run ~until:(T.ms 100) loop;
    !sum / max 1 !n
  in
  let chase = run_chase ~indirect:false in
  let ind = run_chase ~indirect:true in
  Printf.printf "pointer chase (2 RTT): %.1f us\n" (T.to_float_us chase);
  Printf.printf "indirect read (1 op):  %.1f us  (%.2fx lower latency)\n%!"
    (T.to_float_us ind)
    (float_of_int chase /. float_of_int ind)

let ablate_slo () =
  section "Ablation: compacting-scheduler SLO (latency/CPU trade, 48G load)";
  List.iter
    (fun slo_us ->
      let cfg =
        {
          A.default_config with
          A.offered_gbps_per_host = 48.0;
          A.jobs_per_host = 10;
          A.window = T.ms 25;
        }
      in
      let r =
        A.run (A.Pony (Engine.Compacting { slo = T.us slo_us; max_threads = 10 })) cfg
      in
      Printf.printf "SLO %4dus: cpu=%.2f cores  p99=%.0fus\n%!" slo_us
        r.A.cpu_cores
        (T.to_float_us (Stats.Histogram.percentile r.A.prober 99.)))
    [ 10; 50; 200 ]

(* -- Bechamel microbenchmarks ---------------------------------------------- *)

let micro () =
  section "Microbenchmarks (Bechamel): hot data structures";
  let open Bechamel in
  let heap_test =
    Test.make ~name:"heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Sim.Heap.create () in
           for i = 0 to 99 do
             Sim.Heap.add h ~key:((i * 7919) mod 100) i
           done;
           for _ = 0 to 99 do
             ignore (Sim.Heap.pop h)
           done))
  in
  let spsc_test =
    let q = Squeue.Spsc.create ~capacity:1024 () in
    Test.make ~name:"spsc push+pop"
      (Staged.stage (fun () ->
           ignore (Squeue.Spsc.push q ~now:0 1);
           ignore (Squeue.Spsc.pop q)))
  in
  let hist = Stats.Histogram.create () in
  let hist_test =
    Test.make ~name:"histogram record"
      (Staged.stage (fun () -> Stats.Histogram.record hist 123_456))
  in
  let cc = Pony.Timely.create ~max_rate_gbps:100.0 () in
  let timely_test =
    Test.make ~name:"timely rtt sample"
      (Staged.stage (fun () -> Pony.Timely.on_rtt_sample cc 20_000))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |])
        (Toolkit.Instance.monotonic_clock) raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-24s %10.1f ns/op\n%!" name est
        | _ -> Printf.printf "%-24s (no estimate)\n%!" name)
      results
  in
  List.iter
    (fun t -> benchmark (Test.make_grouped ~name:"g" [ t ]))
    [ heap_test; spsc_test; hist_test; timely_test ]

(* -- Latency attribution + perf trajectory -------------------------------- *)

(* The fault/overload/tenancy sections double as the repo's perf
   trajectory: each runs with op latency attribution on, prints a
   per-stage breakdown, and contributes one normalized row to the
   --bench-out document (committed as BENCH_8.json at the repo root,
   gated by tools/bench_gate.py in CI).  Only modeled, deterministic
   quantities are recorded — plus minor-GC words per op, the one
   compiler-dependent number, which the gate holds to a loose
   tolerance. *)

type bench8_row = {
  b_section : string;
  b_ops : int;
  b_goodput_gbps : float;  (* 0 when the section has no goodput notion *)
  b_p50_ns : int;
  b_p99_ns : int;
  b_cpu_ns_per_op : float;  (* modeled engine batch cost per op *)
  b_gc_words_per_op : float;  (* minor-heap words allocated per op *)
}

let bench8_rows : bench8_row list ref = ref []
let slow_wanted = ref false
let slow_sections : (string * string) list ref = ref []

(* Modeled CPU burned inside engine batches, summed over every engine
   registered so far; sections measure the delta across their own
   runs. *)
let engine_batch_cost_sum () =
  List.fold_left
    (fun acc m ->
      match m.Stats.Registry.m_kind with
      | Stats.Registry.Histogram h
        when String.equal m.Stats.Registry.m_name "engine_batch_cost_ns" ->
          acc + Stats.Histogram.sum h
      | _ -> acc)
    0 (Stats.Registry.snapshot ())

let stage_hist i =
  let name = Sim.Optrace.stage_name (Sim.Optrace.stage_of_index i) in
  match Stats.Registry.find ("op_stage_" ^ name) with
  | Some { Stats.Registry.m_kind = Stats.Registry.Histogram h; _ } ->
      Some (name, h)
  | _ -> None

let clear_stage_hists () =
  for i = 0 to Sim.Optrace.n_stages - 1 do
    match stage_hist i with
    | Some (_, h) -> Stats.Histogram.clear h
    | None -> ()
  done

let print_stage_breakdown () =
  Printf.printf "stage breakdown (ns per stage, interpolated quantiles):\n";
  Printf.printf "  %-10s %9s %12s %12s %12s\n" "stage" "count" "p50" "p99"
    "p99.9";
  for i = 0 to Sim.Optrace.n_stages - 1 do
    match stage_hist i with
    | Some (name, h) when Stats.Histogram.count h > 0 ->
        Printf.printf "  %-10s %9d %12.1f %12.1f %12.1f\n" name
          (Stats.Histogram.count h)
          (Stats.Histogram.quantile_interp h 0.5)
          (Stats.Histogram.quantile_interp h 0.99)
          (Stats.Histogram.quantile_interp h 0.999)
    | _ -> ()
  done;
  Printf.printf "  ops traced: %d completed, %d in flight, %d dropped\n%!"
    (List.length (Sim.Optrace.completed ()))
    (Sim.Optrace.in_flight ()) (Sim.Optrace.dropped ())

let bench8_begin () =
  if Sim.Optrace.enabled () then Sim.Optrace.clear ()
  else Sim.Optrace.set_capture (Some 8192);
  clear_stage_hists ();
  (engine_batch_cost_sum (), Gc.minor_words ())

let bench8_end ?cpu_ns_per_op ?gc_words_per_op ~sec ~ops ~goodput_gbps
    ~latencies (cost0, gc0) =
  (* Measure before printing: the report itself allocates.  Sections
     that measure a steady-state window in-workload (churn) pass their
     own per-op figures; the default is the whole-section delta. *)
  let cost1 = engine_batch_cost_sum () and gc1 = Gc.minor_words () in
  let per x = x /. float_of_int (max 1 ops) in
  print_stage_breakdown ();
  bench8_rows :=
    {
      b_section = sec;
      b_ops = ops;
      b_goodput_gbps = goodput_gbps;
      b_p50_ns = Stats.Histogram.percentile latencies 50.;
      b_p99_ns = Stats.Histogram.percentile latencies 99.;
      b_cpu_ns_per_op =
        (match cpu_ns_per_op with
        | Some v -> v
        | None -> per (float_of_int (cost1 - cost0)));
      b_gc_words_per_op =
        (match gc_words_per_op with
        | Some v -> v
        | None -> per (gc1 -. gc0));
    }
    :: !bench8_rows;
  if !slow_wanted then
    slow_sections :=
      (sec, String.trim (Sim.Optrace.slow_ops_json ~k:32 ())) :: !slow_sections

let bench8_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"bench\":\"BENCH_8\",\"sections\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"section\":\"%s\",\"ops\":%d,\"goodput_gbps\":%.3f,\"p50_ns\":%d,\
         \"p99_ns\":%d,\"cpu_ns_per_op\":%.1f,\"gc_minor_words_per_op\":%.1f}"
        r.b_section r.b_ops r.b_goodput_gbps r.b_p50_ns r.b_p99_ns
        r.b_cpu_ns_per_op r.b_gc_words_per_op)
    (List.rev !bench8_rows);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* -- Availability under faults ------------------------------------------- *)

let chaos () =
  section "Availability under faults (Workloads.Chaos)";
  let cfg = Workloads.Chaos.default_config in
  let baseline = Workloads.Chaos.run { cfg with plan = Fault.Plan.empty } in
  let b8 = bench8_begin () in
  let r = Workloads.Chaos.run cfg in
  let pct h p = T.to_float_us (Stats.Histogram.percentile h p) in
  Printf.printf "ops: %d/%d completed, %d lost\n" r.Workloads.Chaos.ops_completed
    r.Workloads.Chaos.ops_expected r.Workloads.Chaos.lost_ops;
  Printf.printf "%-10s %10s %10s %10s %10s %12s\n" "" "p50(us)" "p99(us)"
    "p999(us)" "max(us)" "goodput";
  let row name (res : Workloads.Chaos.result) =
    Printf.printf "%-10s %10.1f %10.1f %10.1f %10.1f %9.2f Gbps\n" name
      (pct res.Workloads.Chaos.latencies 50.0)
      (pct res.Workloads.Chaos.latencies 99.0)
      (pct res.Workloads.Chaos.latencies 99.9)
      (T.to_float_us (Stats.Histogram.max_value res.Workloads.Chaos.latencies))
      res.Workloads.Chaos.goodput_gbps
  in
  row "baseline" baseline;
  row "faulted" r;
  Printf.printf "goodput degradation: %.1f%%\n"
    (Workloads.Chaos.goodput_degradation_pct ~baseline ~faulted:r);
  Printf.printf "recovery: %d retransmits, %d corrupt drops caught, %d rx stalls\n"
    r.Workloads.Chaos.retransmits r.Workloads.Chaos.corrupt_dropped
    r.Workloads.Chaos.rx_stalled;
  Printf.printf "injected: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun (name, v) ->
            if v = 0 then None else Some (Printf.sprintf "%s=%d" name v))
          r.Workloads.Chaos.fault_counters));
  Printf.printf "fabric egress ports:\n";
  Printf.printf "  %-6s %10s %16s\n" "port" "drops" "max-queue(B)";
  List.iter
    (fun (addr, drops, depth) ->
      Printf.printf "  %-6d %10d %16d\n" addr drops depth)
    r.Workloads.Chaos.port_report;
  bench8_end ~sec:"chaos" ~ops:r.Workloads.Chaos.ops_completed
    ~goodput_gbps:r.Workloads.Chaos.goodput_gbps
    ~latencies:r.Workloads.Chaos.latencies b8;
  flush stdout

(* -- Availability under upgrade ------------------------------------------ *)

let chaos_upgrade () =
  section "Availability under upgrade (Workloads.Chaos_upgrade)";
  let module CU = Workloads.Chaos_upgrade in
  let b8 = bench8_begin () in
  let r = CU.run CU.default_config in
  let pct h p = T.to_float_us (Stats.Histogram.percentile h p) in
  Printf.printf "ops: %d/%d completed, %d lost\n" r.CU.ops_completed
    r.CU.ops_expected r.CU.lost_ops;
  Printf.printf "latency: p50 %.1fus p99 %.1fus p999 %.1fus max %.1fus\n"
    (pct r.CU.latencies 50.0) (pct r.CU.latencies 99.0)
    (pct r.CU.latencies 99.9)
    (T.to_float_us (Stats.Histogram.max_value r.CU.latencies));
  Printf.printf
    "upgrade: %d committed, %d rollbacks, %d give-ups, max blackout %.1fms\n"
    r.CU.committed r.CU.rollbacks r.CU.give_ups
    (T.to_float_ms r.CU.max_blackout);
  List.iter
    (fun (addr, rs) ->
      List.iter
        (fun (u : Upgrade.report) ->
          Printf.printf
            "  host %d %s: %s after %d attempt(s), brownout %.1fms blackout %.1fms\n"
            addr u.Upgrade.engine_name
            (match u.Upgrade.outcome with
            | Upgrade.Committed -> "committed"
            | Upgrade.Gave_up why -> "gave up (" ^ why ^ ")")
            u.Upgrade.attempts
            (T.to_float_ms u.Upgrade.brownout)
            (T.to_float_ms u.Upgrade.blackout))
        rs)
    r.CU.reports;
  Printf.printf "watchdog: %s\n"
    (String.concat ", "
       (List.map
          (fun (name, v) -> Printf.sprintf "%s=%d" name v)
          r.CU.watchdog_counters));
  Printf.printf "flow resyncs: %d\n" r.CU.flow_resyncs;
  Printf.printf "injected: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun (name, v) ->
            if v = 0 then None else Some (Printf.sprintf "%s=%d" name v))
          r.CU.fault_counters));
  Printf.printf "groups consistent: %b\n" r.CU.groups_consistent;
  (* Echo workload: each completed op moves op_bytes out and the echo
     back, over the virtual time of the last completion. *)
  let goodput =
    if r.CU.completion_time = 0 then 0.0
    else
      float_of_int
        (r.CU.ops_completed * CU.default_config.CU.op_bytes * 2 * 8)
      /. float_of_int r.CU.completion_time
  in
  Printf.printf "goodput: %.2f Gbps\n" goodput;
  bench8_end ~sec:"chaos_upgrade" ~ops:r.CU.ops_completed ~goodput_gbps:goodput
    ~latencies:r.CU.latencies b8;
  let r2 = CU.run CU.default_config in
  Printf.printf "deterministic across runs: %b\n"
    (String.equal (CU.fingerprint r) (CU.fingerprint r2));
  flush stdout

(* -- Overload protection ------------------------------------------------- *)

let overload () =
  section "Overload protection (Workloads.Overload)";
  let module O = Workloads.Overload in
  let b8 = bench8_begin () in
  let r = O.run O.default_config in
  let u = O.run { O.default_config with O.aggressors = 0 } in
  Printf.printf
    "aggressors: %d offered -> %d ok, %d rejected, %d timed out, %d busy\n"
    r.O.offered r.O.agg_ok r.O.agg_rejected r.O.agg_timed_out r.O.agg_busy;
  Printf.printf
    "protection: %d quota-rejected, %d shed at dequeue, %d expired, %d busy \
     NACKs, %d rx pool drops\n"
    r.O.quota_rejected r.O.ops_shed r.O.ops_expired r.O.busy_nacks
    r.O.rx_pool_drops;
  Printf.printf "back-pressure: %d zero-window probes, %d pressure transitions\n"
    r.O.zero_window_probes r.O.pressure_transitions;
  let pct h p = T.to_float_us (Stats.Histogram.percentile h p) in
  Printf.printf
    "victim: %d/%d ok, goodput %.2f Gbps (uncontended %.2f, %.0f%% kept), p99 \
     %.1fus (uncontended %.1fus)\n"
    r.O.victim_ok O.default_config.O.victim_ops r.O.victim_goodput_gbps
    u.O.victim_goodput_gbps
    (100.0 *. r.O.victim_goodput_gbps /. u.O.victim_goodput_gbps)
    (pct r.O.victim_latencies 99.0)
    (pct u.O.victim_latencies 99.0);
  Printf.printf "hygiene: %d pool bytes leaked, %d Exhausted escapes\n"
    r.O.pool_leak_bytes r.O.exhausted_escapes;
  bench8_end ~sec:"overload" ~ops:r.O.victim_ok
    ~goodput_gbps:r.O.victim_goodput_gbps ~latencies:r.O.victim_latencies b8;
  let r2 = O.run O.default_config in
  Printf.printf "deterministic across runs: %b\n"
    (String.equal (O.fingerprint r) (O.fingerprint r2));
  flush stdout

(* -- Partition / peer failure --------------------------------------------- *)

let partition () =
  section "Peer failure and reconnect (Workloads.Partition)";
  let module P = Workloads.Partition in
  let b8 = bench8_begin () in
  let r = P.run P.default_config in
  Printf.printf
    "ops: %d attempted -> %d resolved (%d echo ok, %d echo timeouts, %d \
     peer-dead, %d retry-exhausted, %d other)\n"
    r.P.ops_attempted r.P.ops_resolved r.P.echo_ok r.P.echo_timeouts
    r.P.peer_dead_failures r.P.retry_exhausted r.P.other_failures;
  Printf.printf "no op hangs: %b (victims finished: %d/2)\n"
    (r.P.ops_resolved = r.P.ops_attempted && r.P.victims_finished = 2)
    r.P.victims_finished;
  Printf.printf
    "lifecycle: %d conns established, %d closed, %d resets sent, %d conn \
     deaths, %d peer-dead ops\n"
    r.P.conns_established r.P.conns_closed r.P.conn_resets r.P.peer_deaths
    r.P.peer_dead_ops;
  Printf.printf
    "recovery: %d reconnects, %d server registrations, server incarnation \
     %d, %d peer restarts detected, %d stale drops, %d keepalive probes\n"
    r.P.reconnects r.P.server_registrations r.P.server_incarnation
    r.P.peer_restarts r.P.stale_drops r.P.keepalive_probes;
  Printf.printf
    "detection: slowest failed op resolved in %.1fus (bound %.1fus); \
     longest victim outage %.1fms (bound %.1fms) -> within bounds: %b\n"
    (T.to_float_us r.P.max_failed_resolution)
    (T.to_float_us r.P.resolution_bound)
    (T.to_float_ms r.P.max_outage)
    (T.to_float_ms r.P.outage_bound)
    r.P.detection_ok;
  let pct h p = T.to_float_us (Stats.Histogram.percentile h p) in
  Printf.printf "clean-path latency: p50 %.1fus p99 %.1fus\n"
    (pct r.P.latencies 50.0) (pct r.P.latencies 99.0);
  Printf.printf "injected: %s\n"
    (String.concat ", "
       (List.filter_map
          (fun (name, v) ->
            if v = 0 then None else Some (Printf.sprintf "%s=%d" name v))
          r.P.fault_counters));
  Printf.printf "hygiene: %d pool bytes leaked\n" r.P.pool_leak_bytes;
  (* Echoes move the op's bytes out and back; failed episodes move
     nothing that completes. *)
  let goodput =
    if r.P.last_echo_done = 0 then 0.0
    else
      float_of_int (r.P.echo_ok * P.default_config.P.bytes * 2 * 8)
      /. float_of_int r.P.last_echo_done
  in
  Printf.printf "goodput: %.2f Gbps\n" goodput;
  bench8_end ~sec:"partition" ~ops:r.P.ops_resolved ~goodput_gbps:goodput
    ~latencies:r.P.latencies b8;
  let r2 = P.run P.default_config in
  Printf.printf "deterministic across runs: %b\n"
    (String.equal (P.fingerprint r) (P.fingerprint r2));
  flush stdout

(* -- Multi-tenant guest networking ---------------------------------------- *)

let tenants () =
  section "Multi-tenant guest networking (Workloads.Tenants)";
  let module G = Workloads.Tenants in
  let b8 = bench8_begin () in
  let r = G.run G.default_config in
  (* Uncontended baseline: same tenant population, aggressors silent. *)
  let u = G.run { G.default_config with G.aggressor_ops = 0 } in
  Printf.printf "tenants: %d (%d victims, %d aggressors) on one host\n"
    r.G.n_tenants r.G.n_victims r.G.n_aggressors;
  let pct h p = T.to_float_us (Stats.Histogram.percentile h p) in
  Printf.printf
    "victim: %d ok, %d failed, %d retries; goodput %.2f Gbps (uncontended \
     %.2f, %.0f%% kept), p99 %.1fus (uncontended %.1fus)\n"
    r.G.victim_ok r.G.victim_failed r.G.victim_retries r.G.victim_goodput_gbps
    u.G.victim_goodput_gbps
    (if u.G.victim_goodput_gbps > 0.0 then
       100.0 *. r.G.victim_goodput_gbps /. u.G.victim_goodput_gbps
     else 0.0)
    (pct r.G.victim_latencies 99.0)
    (pct u.G.victim_latencies 99.0);
  Printf.printf
    "aggressors: %d completed, %d rejected by tenant quota, %d failed, %d \
     cancelled\n"
    r.G.agg_completed r.G.agg_rejected r.G.agg_failed r.G.agg_cancelled;
  Printf.printf "rings: %d rx delivered, %d rx drops, %d posts bounced\n"
    r.G.rx_delivered r.G.rx_drops r.G.tx_post_failures;
  Printf.printf
    "lifecycle: %d/%d detached (%d forced), %d bytes bulk-reclaimed\n"
    r.G.detached r.G.n_tenants r.G.force_detached r.G.reclaimed_bytes;
  Printf.printf
    "upgrade: %d committed, %d rollbacks, max blackout %.1fus, %d mux resyncs\n"
    r.G.upgrade_committed r.G.upgrade_rollbacks
    (T.to_float_us r.G.max_blackout)
    r.G.mux_resyncs;
  (* The blackout floor is 2x nic_filter_update (8 ms of NIC filter
     reprogramming) regardless of state size; "bounded" means the
     serialize term stays small and nothing is lost across it. *)
  Printf.printf "blackout bounded: %b\n" (r.G.max_blackout < T.ms 15);
  Printf.printf "all tenants detached: %b\n" (r.G.detached = r.G.n_tenants);
  Printf.printf "hygiene: %d pool bytes leaked\n" r.G.pool_leak_bytes;
  bench8_end ~sec:"tenants" ~ops:r.G.victim_ok
    ~goodput_gbps:r.G.victim_goodput_gbps ~latencies:r.G.victim_latencies b8;
  let r2 = G.run G.default_config in
  Printf.printf "deterministic across runs: %b\n"
    (String.equal (G.fingerprint r) (G.fingerprint r2));
  flush stdout

(* -- Connection-scaling churn ---------------------------------------------- *)

let churn () =
  section "Million-connection churn (Workloads.Churn)";
  let module C = Workloads.Churn in
  let b8 = bench8_begin () in
  let r = C.run C.default_config in
  Printf.printf "mesh: %d drivers x %d sinks = %d conns; live at steady: %d\n"
    r.C.n_drivers r.C.n_drivers r.C.conns_target r.C.live_at_steady;
  Printf.printf
    "ops: %d ok, %d failed, %d strays; storms: %d closes, %d reconnects, \
     %d/%d burst ops ok\n"
    r.C.ops_ok r.C.ops_failed r.C.stray_completions r.C.closes r.C.reconnects
    r.C.burst_ok (r.C.burst_ok + r.C.burst_failed);
  Printf.printf
    "steady window (%d ops): %.1f minor-GC words/op, %.1f engine ns/op\n"
    r.C.steady_ops r.C.steady_gc_words_per_op r.C.steady_cpu_ns_per_op;
  let pct h p = T.to_float_us (Stats.Histogram.percentile h p) in
  Printf.printf "latency: p50 %.1fus p99 %.1fus; goodput %.2f Gbps\n"
    (pct r.C.latencies 50.0) (pct r.C.latencies 99.0) (C.goodput_gbps r);
  Printf.printf
    "lifecycle: %d halves established, %d closed, %d resets, %d deaths\n"
    r.C.conns_established r.C.conns_closed r.C.conn_resets r.C.peer_deaths;
  Printf.printf "all conns live at steady: %b\n"
    (r.C.live_at_steady = r.C.conns_target && r.C.ramp_failures = 0);
  Printf.printf "no failed ops: %b\n"
    (r.C.ops_failed = 0 && r.C.burst_failed = 0);
  Printf.printf "hygiene: %d pool bytes leaked\n" r.C.pool_leak_bytes;
  bench8_end ~sec:"churn"
    ~ops:(r.C.ops_ok + r.C.burst_ok)
    ~goodput_gbps:(C.goodput_gbps r) ~latencies:r.C.latencies
    ~cpu_ns_per_op:r.C.steady_cpu_ns_per_op
    ~gc_words_per_op:r.C.steady_gc_words_per_op b8;
  let r2 = C.run C.default_config in
  Printf.printf "deterministic across runs: %b\n"
    (String.equal (C.fingerprint r) (C.fingerprint r2));
  flush stdout

(* -- Hostile-guest hardening ----------------------------------------------- *)

let hostile () =
  section "Hostile-guest hardening (Workloads.Hostile)";
  let module H = Workloads.Hostile in
  let b8 = bench8_begin () in
  (* Clean same-seed baseline first: identical cohorts and schedule,
     empty fault plan. *)
  let clean = H.run { H.default_config with H.byzantine = false } in
  let r = H.run H.default_config in
  Printf.printf "tenants: %d (%d victims, %d byzantine attackers)\n"
    r.H.n_tenants r.H.n_victims r.H.n_attackers;
  let pct h p = T.to_float_us (Stats.Histogram.percentile h p) in
  let kept =
    if clean.H.victim_goodput_gbps > 0.0 then
      100.0 *. r.H.victim_goodput_gbps /. clean.H.victim_goodput_gbps
    else 0.0
  in
  Printf.printf
    "victim: %d ok, %d failed, %d retries; goodput %.2f Gbps (clean %.2f), \
     p99 %.1fus (clean %.1fus)\n"
    r.H.victim_ok r.H.victim_failed r.H.victim_retries r.H.victim_goodput_gbps
    clean.H.victim_goodput_gbps
    (pct r.H.victim_latencies 99.0)
    (pct clean.H.victim_latencies 99.0);
  Printf.printf "attacks: %d byzantine windows launched; violations: %s\n"
    r.H.guest_attacks
    (String.concat ", "
       (List.filter_map
          (fun (name, v) ->
            if v = 0 then None else Some (Printf.sprintf "%s=%d" name v))
          r.H.violations));
  Printf.printf
    "verdicts: %d descs completed Failed, %d cancelled, %d rx drops, %d \
     unmatched completions, %d checked posts refused\n"
    r.H.atk_failed r.H.atk_cancelled r.H.rx_drops r.H.unmatched_completions
    r.H.post_bad_range;
  Printf.printf
    "containment: %d/%d attackers quarantined (%d suspect escalations), \
     worst detection %.1fus (bound %.1fus)\n"
    r.H.attackers_quarantined r.H.n_attackers r.H.suspects
    (T.to_float_us r.H.max_detection)
    (T.to_float_us H.default_config.H.detect_bound);
  Printf.printf "all attackers quarantined: %b\n"
    (r.H.attackers_quarantined = r.H.n_attackers);
  Printf.printf "within bound: %b\n" r.H.detection_ok;
  Printf.printf "no victim violations: %b\n" (r.H.victim_violations = 0);
  Printf.printf "victim goodput kept: %b (%.0f%% of clean, need >= 80%%)\n"
    (kept >= 80.0) kept;
  Printf.printf "all tenants detached: %b\n" (r.H.detached = r.H.n_tenants);
  Printf.printf "hygiene: %d pool bytes leaked\n" r.H.pool_leak_bytes;
  bench8_end ~sec:"hostile" ~ops:r.H.victim_ok
    ~goodput_gbps:r.H.victim_goodput_gbps ~latencies:r.H.victim_latencies b8;
  let r2 = H.run H.default_config in
  Printf.printf "deterministic across runs: %b\n"
    (String.equal (H.fingerprint r) (H.fingerprint r2));
  flush stdout

(* -- Determinism sweep ---------------------------------------------------- *)

(* Invariant-checked schedule-perturbation sweep: runs the chaos,
   chaos_upgrade and overload workloads (reduced op counts) across
   seeds x event-loop tie-break salts x repeats with randomized Hashtbl
   hashing, asserting every registered invariant holds and every
   fingerprint is a function of the seed alone.  Finishes with a
   sabotage run proving the checker is not vacuous. *)
let sweep () =
  section "Determinism sweep: invariants under schedule perturbation";
  Check.Invariant.set_enabled true;
  (* Latency attribution on for every swept run, so the per-engine
     stage-conservation invariant is exercised across chaos, upgrade,
     overload, tenants and partition schedules. *)
  Sim.Optrace.set_capture (Some 8192);
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let report name outcome =
    Printf.printf "%-14s %s%!" name (Check.Explore.summary outcome);
    if not (Check.Explore.ok outcome) then exit 1
  in
  let module C = Workloads.Chaos in
  report "chaos"
    (Check.Explore.sweep ~seeds ~randomize_hash:true
       ~run:(fun ~seed ~salt ->
         C.fingerprint
           (C.run
              { C.default_config with C.seed; tie_salt = salt;
                ops_per_client = 150 }))
       ());
  let module CU = Workloads.Chaos_upgrade in
  report "chaos_upgrade"
    (Check.Explore.sweep ~seeds ~randomize_hash:true
       ~run:(fun ~seed ~salt ->
         CU.fingerprint
           (CU.run
              { CU.default_config with CU.seed; tie_salt = salt;
                ops_per_client = 250 }))
       ());
  let module O = Workloads.Overload in
  report "overload"
    (Check.Explore.sweep ~seeds ~randomize_hash:true
       ~run:(fun ~seed ~salt ->
         O.fingerprint
           (O.run
              { O.default_config with O.seed; tie_salt = salt;
                victim_ops = 60; stop_at = T.ms 10; run_cap = T.ms 40 }))
       ());
  let module G = Workloads.Tenants in
  report "tenants"
    (Check.Explore.sweep ~seeds ~randomize_hash:true
       ~run:(fun ~seed ~salt ->
         G.fingerprint
           (G.run
              { G.default_config with G.seed; tie_salt = salt;
                tenants = 24; victim_ops = 8; aggressor_ops = 20;
                stop_at = T.ms 8; run_cap = T.ms 20 }))
       ());
  let module P = Workloads.Partition in
  report "partition"
    (Check.Explore.sweep ~seeds ~randomize_hash:true
       ~run:(fun ~seed ~salt ->
         P.fingerprint
           (P.run
              { P.default_config with P.seed; tie_salt = salt;
                ops_per_victim = 60; stop_at = T.ms 22; run_cap = T.ms 40 }))
       ());
  let module H = Workloads.Hostile in
  report "hostile"
    (Check.Explore.sweep ~seeds ~randomize_hash:true
       ~run:(fun ~seed ~salt ->
         H.fingerprint
           (H.run
              { H.default_config with H.seed; tie_salt = salt;
                tenants = 12; victim_ops = 6 }))
       ());
  let module Ch = Workloads.Churn in
  report "churn"
    (Check.Explore.sweep ~seeds ~randomize_hash:true
       ~run:(fun ~seed ~salt ->
         Ch.fingerprint
           (Ch.run
              { Ch.default_config with Ch.seed; tie_salt = salt;
                clients_per_side = 16; ops_per_driver = 12;
                stop_at = T.ms 30; run_cap = T.ms 60 }))
       ());
  Printf.printf "invariants registered (last run): %d, evaluations: %d\n"
    (Check.Invariant.registered ())
    (Check.Invariant.evaluations ());
  (* Non-vacuity: arm a deliberate bookkeeping bug (admission charges
     never released) and require the quiesce-time pool invariant to
     catch it. *)
  Check.Invariant.set_sabotage "skip_credit_release" true;
  let caught =
    match
      Workloads.Chaos.run
        { C.default_config with C.ops_per_client = 50 }
    with
    | _ -> None
    | exception Check.Invariant.Violation msg -> Some msg
  in
  Check.Invariant.set_sabotage "skip_credit_release" false;
  (match caught with
  | Some msg ->
      Printf.printf "sabotage caught by checker: %s\n%!"
        (String.concat " " (String.split_on_char '\n' msg))
  | None ->
      Printf.printf "SABOTAGE NOT CAUGHT: checker is vacuous\n%!";
      exit 1);
  (* Guest-side non-vacuity: the backend forgets an op's bookkeeping
     (in-flight entry + admission charge); the tenant's detach-quiesce
     invariant must notice. *)
  Check.Invariant.set_sabotage "guest_skip_release" true;
  let caught_guest =
    match
      Workloads.Tenants.run
        { G.default_config with G.tenants = 8; victim_ops = 4;
          aggressor_ops = 8; upgrade_at = None; force_detach_at = None;
          stop_at = T.ms 6; run_cap = T.ms 16 }
    with
    | _ -> None
    | exception Check.Invariant.Violation msg -> Some msg
  in
  Check.Invariant.set_sabotage "guest_skip_release" false;
  (match caught_guest with
  | Some msg ->
      Printf.printf "guest sabotage caught by checker: %s\n%!"
        (String.concat " " (String.split_on_char '\n' msg))
  | None ->
      Printf.printf "SABOTAGE NOT CAUGHT: guest checker is vacuous\n%!";
      exit 1);
  (* Lifecycle non-vacuity: a dying conn forgets to reclaim — waiting
     ops are never failed and charges stay held; the peer-reclaim (or
     pool quiesce) invariant must notice. *)
  Check.Invariant.set_sabotage "skip_peer_reclaim" true;
  let caught_peer =
    match
      (* Continuous streaming of large multi-chunk messages, so blackout
         edges cut messages mid-flight: the receiving side then holds
         pool-charged reassembly state when the keepalive declares the
         conn dead, and a sabotaged kill_conn strands it. *)
      Workloads.Partition.run
        { Workloads.Partition.default_config with
          Workloads.Partition.ops_per_victim = 200;
          op_interval = T.us 0; bytes = 131072;
          stop_at = T.ms 22; run_cap = T.ms 40 }
    with
    | _ -> None
    | exception Check.Invariant.Violation msg -> Some msg
  in
  Check.Invariant.set_sabotage "skip_peer_reclaim" false;
  (match caught_peer with
  | Some msg ->
      Printf.printf "peer-reclaim sabotage caught by checker: %s\n%!"
        (String.concat " " (String.split_on_char '\n' msg))
  | None ->
      Printf.printf "SABOTAGE NOT CAUGHT: peer-reclaim checker is vacuous\n%!";
      exit 1);
  (* Attribution non-vacuity: the dequeue stamp advances the
     attribution cursor without charging the elapsed time, so a
     completed op's stage durations no longer sum to its end-to-end
     latency; the per-engine conservation invariant must notice. *)
  Sim.Optrace.clear ();
  Check.Invariant.set_sabotage "skip_op_attribution" true;
  let caught_attr =
    match
      Workloads.Chaos.run { C.default_config with C.ops_per_client = 50 }
    with
    | _ -> None
    | exception Check.Invariant.Violation msg -> Some msg
  in
  Check.Invariant.set_sabotage "skip_op_attribution" false;
  Sim.Optrace.clear ();
  (match caught_attr with
  | Some msg ->
      Printf.printf "attribution sabotage caught by checker: %s\n%!"
        (String.concat " " (String.split_on_char '\n' msg))
  | None ->
      Printf.printf "SABOTAGE NOT CAUGHT: attribution checker is vacuous\n%!";
      exit 1);
  (* Quarantine non-vacuity: escalation stops short of quarantining —
     violations keep accruing past the threshold while the tenant stays
     attached; the [guest.quarantine] invariant must notice. *)
  Check.Invariant.set_sabotage "skip_tenant_quarantine" true;
  let caught_quarantine =
    match
      Workloads.Hostile.run
        { H.default_config with H.tenants = 8; victim_ops = 4 }
    with
    | _ -> None
    | exception Check.Invariant.Violation msg -> Some msg
  in
  Check.Invariant.set_sabotage "skip_tenant_quarantine" false;
  (match caught_quarantine with
  | Some msg ->
      Printf.printf "quarantine sabotage caught by checker: %s\n%!"
        (String.concat " " (String.split_on_char '\n' msg))
  | None ->
      Printf.printf "SABOTAGE NOT CAUGHT: quarantine checker is vacuous\n%!";
      exit 1);
  Printf.printf "sweep OK\n%!"

(* -- Driver ------------------------------------------------------------------ *)

let all_benches =
  [
    ("table1", table1);
    ("fig6a", fig6a);
    ("fig6b", fig6bc);
    ("fig6c", fig6bc);
    ("fig6d", fig6d);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ablate-mtu", ablate_mtu);
    ("ablate-indirect", ablate_indirect);
    ("ablate-slo", ablate_slo);
    ("chaos", chaos);
    ("chaos_upgrade", chaos_upgrade);
    ("overload", overload);
    ("partition", partition);
    ("tenants", tenants);
    ("churn", churn);
    ("hostile", hostile);
    ("sweep", sweep);
    ("micro", micro);
  ]

(* The section list in any user-facing text is generated from
   [all_benches]; adding a section above is all it takes. *)
let section_names () = String.concat ", " (List.map fst all_benches)

let usage oc =
  Printf.fprintf oc
    "usage: main.exe [SECTION...|all] [--only SECTION[,SECTION...]] \
     [--metrics-out FILE.json] [--trace-out FILE.json] [--slow-ops-out \
     FILE.json] [--bench-out FILE.json] [--check]\n\
     sections (comma-separable): %s\n\
     `all` runs everything except the sweep (which re-runs the fault \
     workloads many times and must be named explicitly).\n"
    (section_names ())

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Pull `--flag VALUE` pairs out of the arg list, returning the value
   (last wins) and the remaining positional args. *)
let extract_flag flag args =
  let rec go acc value = function
    | [] -> (value, List.rev acc)
    | a :: v :: rest when a = flag -> go acc (Some v) rest
    | [ a ] when a = flag ->
        Printf.eprintf "%s requires a file argument\n" flag;
        exit 2
    | a :: rest -> go (a :: acc) value rest
  in
  go [] None args

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.exists (fun a -> a = "--help" || a = "-h") args then begin
    usage stdout;
    exit 0
  end;
  (* Accept `--only NAME[,NAME...]` as an alias for the positional form. *)
  let args = List.filter (fun a -> a <> "--only") args in
  let metrics_out, args = extract_flag "--metrics-out" args in
  let trace_out, args = extract_flag "--trace-out" args in
  let slow_ops_out, args = extract_flag "--slow-ops-out" args in
  let bench_out, args = extract_flag "--bench-out" args in
  (* --check turns on the invariant registry for every workload run in
     the selected sections (the sweep section enables it regardless). *)
  let check_on = List.mem "--check" args in
  let args = List.filter (fun a -> a <> "--check") args in
  (* Section names may be comma-separated. *)
  let args =
    List.concat_map (String.split_on_char ',') args
    |> List.filter (fun a -> a <> "")
  in
  if check_on then Check.Invariant.set_enabled true;
  if trace_out <> None then Sim.Span.set_capture (Some 200_000);
  if slow_ops_out <> None then begin
    slow_wanted := true;
    Sim.Optrace.set_capture (Some 8192)
  end;
  (match args with
  | [] | [ "all" ] ->
      (* fig6b and fig6c share one run; don't execute twice.  The sweep
         re-runs the fault workloads many times over; it only runs when
         named explicitly. *)
      List.iter
        (fun (name, f) -> if name <> "fig6c" && name <> "sweep" then f ())
        all_benches
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name all_benches with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown bench %s\n" name;
              usage stderr;
              exit 2)
        names);
  if check_on then
    Printf.printf
      "invariant checker: %d registered (last run), %d evaluations, no \
       violations\n%!"
      (Check.Invariant.registered ())
      (Check.Invariant.evaluations ());
  Option.iter
    (fun path ->
      write_file path (Stats.Registry.to_json ());
      Printf.printf "metrics written to %s\n%!" path)
    metrics_out;
  Option.iter
    (fun path ->
      write_file path (Sim.Span.to_chrome_json ());
      if Sim.Span.dropped () > 0 then
        Printf.printf "trace ring dropped %d events\n" (Sim.Span.dropped ());
      Printf.printf "trace written to %s\n%!" path)
    trace_out;
  Option.iter
    (fun path ->
      write_file path (bench8_json ());
      Printf.printf "bench rows written to %s\n%!" path)
    bench_out;
  Option.iter
    (fun path ->
      let doc =
        match List.rev !slow_sections with
        | [] -> Sim.Optrace.slow_ops_json ~k:32 ()
        | secs ->
            "{\"sections\":["
            ^ String.concat ","
                (List.map
                   (fun (n, j) ->
                     Printf.sprintf "{\"section\":\"%s\",\"report\":%s}" n j)
                   secs)
            ^ "]}\n"
      in
      write_file path doc;
      Printf.printf "slow ops written to %s\n%!" path)
    slow_ops_out
